"""Blocking JSONL client for :class:`repro.net.server.SkylineServer`.

One socket, one request in flight at a time — the simplest correct
client, used by the tests and ``examples/net_demo.py``::

    with SkylineClient("127.0.0.1", 7007) as client:
        client.ping()
        body = client.query(gamma=0.6, algorithm="LO")
        keys = [tuple(k) if isinstance(k, list) else k for k in body["keys"]]

Error frames raise :class:`ServerError` subclasses keyed by the wire
code: ``timeout`` → :class:`RequestTimeout`, ``overloaded`` →
:class:`ServerOverloaded`, everything else the base class.
"""

from __future__ import annotations

import socket
from itertools import count
from typing import Any, Dict, Optional

from . import protocol

__all__ = [
    "SkylineClient",
    "ServerError",
    "RequestTimeout",
    "ServerOverloaded",
]


class ServerError(RuntimeError):
    """The server answered with an error frame."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class RequestTimeout(ServerError):
    """The request hit its ``deadline_ms`` (code ``timeout``)."""


class ServerOverloaded(ServerError):
    """The admission queue was full (code ``overloaded``)."""


_ERROR_TYPES = {
    protocol.ERROR_TIMEOUT: RequestTimeout,
    protocol.ERROR_OVERLOADED: ServerOverloaded,
}


class SkylineClient:
    """Synchronous line-protocol client; safe for one thread at a time."""

    def __init__(
        self, host: str, port: int, *, connect_timeout: float = 10.0
    ):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._file = self._sock.makefile("rb")
        self._ids = count(1)

    # -- request/response ----------------------------------------------

    def request(self, op: str, **fields) -> Dict[str, Any]:
        """One round trip; returns the ``result`` body or raises."""
        request_id = next(self._ids)
        frame = {"id": request_id, "op": op, **fields}
        deadline_ms = fields.get("deadline_ms")
        # Block on the socket a bit past the server-side deadline so a
        # dead server surfaces as an OSError, not a hang.
        if deadline_ms:
            self._sock.settimeout(float(deadline_ms) / 1000.0 + 30.0)
        else:
            self._sock.settimeout(None)
        self._sock.sendall(protocol.encode_frame(frame))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = protocol.decode_frame(line)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match"
                f" request id {request_id!r}"
            )
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        code = error.get("code", protocol.ERROR_INTERNAL)
        raise _ERROR_TYPES.get(code, ServerError)(
            code, error.get("message", "unknown error")
        )

    # -- operations -----------------------------------------------------

    def query(
        self, *, deadline_ms: Optional[int] = None, **spec
    ) -> Dict[str, Any]:
        """Run one skyline query; returns keys/gamma/algorithm/stats."""
        fields = dict(spec)
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.request("query", **fields)

    def explain(self, **spec) -> str:
        return self.request("explain", **spec)["plan"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SkylineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
