"""Bounded, FIFO-fair admission of queries onto the shared engine pool.

The server never lets raw socket concurrency hit the
:class:`~repro.engine.pool.PersistentPool` directly.  Every query first
passes the :class:`AdmissionController`:

* at most ``max_inflight`` queries execute at once — the rest wait;
* at most ``max_waiting`` queries wait — beyond that the controller
  rejects immediately (:class:`AdmissionRejected`, wire code
  ``overloaded``) instead of buffering unboundedly;
* waiters are served strictly first-come-first-served via ticket
  numbers, so one chatty connection cannot starve another;
* a waiter whose per-request deadline expires is removed from the
  queue and raises :class:`AdmissionTimeout` (wire code ``timeout``).

``drain()`` supports graceful shutdown: it stops new admissions and
blocks until in-flight queries settle (or the drain timeout passes).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTimeout",
    "AdmissionClosed",
]


class AdmissionRejected(RuntimeError):
    """The waiting queue is full; the request was shed immediately."""


class AdmissionTimeout(TimeoutError):
    """The request's deadline expired while waiting for an execution slot."""


class AdmissionClosed(RuntimeError):
    """The controller is draining or closed; no new work is admitted."""


class AdmissionController:
    """FIFO ticket queue bounding concurrent queries on one pool."""

    def __init__(self, max_inflight: int = 4, max_waiting: int = 32):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_waiting < 0:
            raise ValueError(f"max_waiting must be >= 0, got {max_waiting}")
        self.max_inflight = int(max_inflight)
        self.max_waiting = int(max_waiting)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._waiting: deque = deque()  # ticket numbers, FIFO
        self._next_ticket = 0
        self._in_flight = 0
        self._closed = False
        self.admitted_total = 0
        self.rejected_total = 0
        self.timed_out_total = 0

    # -- core protocol --------------------------------------------------

    def admit(self, *, deadline: Optional[float] = None, clock=None) -> None:
        """Block until an execution slot is free; must be paired with
        :meth:`release`.

        ``deadline`` is an absolute monotonic timestamp (``clock()``
        domain; defaults to :func:`time.monotonic`).  Raises
        :class:`AdmissionRejected` when the waiting queue is already
        full, :class:`AdmissionTimeout` on deadline expiry, and
        :class:`AdmissionClosed` once draining has begun.
        """
        if clock is None:
            import time

            clock = time.monotonic
        with self._cond:
            if self._closed:
                raise AdmissionClosed("server is shutting down")
            if (
                self._in_flight >= self.max_inflight
                and len(self._waiting) >= self.max_waiting
            ):
                self.rejected_total += 1
                raise AdmissionRejected(
                    f"{self._in_flight} queries in flight and"
                    f" {len(self._waiting)} waiting (max_waiting="
                    f"{self.max_waiting}); retry later"
                )
            ticket = self._next_ticket
            self._next_ticket += 1
            self._waiting.append(ticket)
            try:
                while True:
                    if self._closed:
                        raise AdmissionClosed("server is shutting down")
                    if (
                        self._waiting
                        and self._waiting[0] == ticket
                        and self._in_flight < self.max_inflight
                    ):
                        self._waiting.popleft()
                        self._in_flight += 1
                        self.admitted_total += 1
                        # The head moved: wake the next waiter so it can
                        # re-check whether it is now first in line.
                        self._cond.notify_all()
                        return
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - clock()
                        if timeout <= 0:
                            self.timed_out_total += 1
                            raise AdmissionTimeout(
                                "deadline expired while waiting for an"
                                f" execution slot ({self._in_flight} in"
                                " flight)"
                            )
                    self._cond.wait(timeout)
            except BaseException:
                try:
                    self._waiting.remove(ticket)
                except ValueError:
                    pass
                self._cond.notify_all()
                raise

    def release(self) -> None:
        """Return an execution slot; wakes the next FIFO waiter."""
        with self._cond:
            if self._in_flight <= 0:  # pragma: no cover - caller bug
                raise RuntimeError("release() without matching admit()")
            self._in_flight -= 1
            self._cond.notify_all()

    # -- shutdown -------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new admissions and wait for in-flight queries to
        settle; returns ``True`` when everything drained in time."""
        import time

        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()  # waiters observe closed and bail
            while self._in_flight > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "waiting": len(self._waiting),
                "max_inflight": self.max_inflight,
                "max_waiting": self.max_waiting,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
                "timed_out_total": self.timed_out_total,
            }
