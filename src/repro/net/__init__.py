"""Network front-end for the persistent skyline engine.

``repro.net`` serves one resident dataset over TCP with concurrent
query admission: a line-oriented JSONL protocol (:mod:`.protocol`), an
HTTP/1.1 POST shim on the same port, bounded FIFO admission onto the
shared :class:`~repro.engine.pool.PersistentPool` (:mod:`.admission`),
and a blocking client (:mod:`.client`).  Start one with::

    engine = SkylineEngine(execution="workers=4")
    handle = engine.attach(data)
    with SkylineServer(engine, handle, port=7007) as server:
        ...

or from the CLI: ``repro serve --csv nba.csv --group-by 0 --of 1,2
--listen 127.0.0.1:7007``.
"""

from .admission import (
    AdmissionClosed,
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)
from .client import (
    RequestTimeout,
    ServerError,
    ServerOverloaded,
    SkylineClient,
)
from .protocol import PROTOCOL_VERSION, SpecError, validate_spec
from .server import QueryDeadlineExpired, SkylineServer

__all__ = [
    "AdmissionClosed",
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTimeout",
    "PROTOCOL_VERSION",
    "QueryDeadlineExpired",
    "RequestTimeout",
    "ServerError",
    "ServerOverloaded",
    "SkylineClient",
    "SkylineServer",
    "SpecError",
    "validate_spec",
]
