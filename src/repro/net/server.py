"""JSONL-over-TCP skyline server with an HTTP/1.1 POST shim.

One :class:`SkylineServer` wraps one :class:`~repro.engine.SkylineEngine`
and one resident :class:`~repro.engine.session.DatasetHandle`.  Clients
speak the line protocol from :mod:`repro.net.protocol`; the first line
of a connection is sniffed, and anything shaped like an HTTP/1.x request
line is handed to the HTTP shim instead (``POST /query`` with a JSON
body, ``GET /stats``), so the same port serves ``curl`` and the native
client.

Concurrency model
-----------------
* one daemon thread accepts connections; one thread per connection
  reads frames;
* every ``query`` op passes the :class:`AdmissionController` — bounded
  in-flight queries, bounded FIFO waiting queue, per-request deadline —
  then executes on a ``ThreadPoolExecutor`` sized to ``max_inflight``
  over the engine's thread-safe :meth:`~repro.engine.SkylineEngine.query`;
* the engine pool interleaves the admitted queries' chunk streams and
  routes deliveries by ``(query id, span)``, so concurrent results are
  bit-identical to sequential execution;
* deadline expiry returns a ``timeout`` error frame.  The abandoned
  query keeps its admission slot until it actually finishes — the pool
  is never killed, and total pool pressure stays bounded.

Shutdown (``shutdown()`` or SIGTERM via ``install_signal_handlers``)
stops accepting, lets connection threads finish the frame they are
serving, drains in-flight queries up to ``drain_timeout`` seconds, then
closes every socket.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Dict, Mapping, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from .admission import (
    AdmissionClosed,
    AdmissionController,
    AdmissionRejected,
    AdmissionTimeout,
)
from . import protocol
from .protocol import SpecError

__all__ = ["SkylineServer", "QueryDeadlineExpired"]

_HTTP_REQUEST_LINE = re.compile(rb"^[A-Z]+ \S+ HTTP/1\.[01]$")

#: recv timeout; doubles as the poll interval for the closing flag.
_POLL_SECONDS = 0.5


class QueryDeadlineExpired(TimeoutError):
    """A query ran past its ``deadline_ms`` while executing."""


class _LineReader:
    """Buffered newline framing over a socket, polling a closing flag."""

    def __init__(self, sock: socket.socket, closing: threading.Event):
        self._sock = sock
        self._closing = closing
        self._buf = b""

    def readline(self) -> Optional[bytes]:
        """Next line without its newline; ``None`` on EOF or shutdown."""
        while True:
            idx = self._buf.find(b"\n")
            if idx >= 0:
                line, self._buf = self._buf[:idx], self._buf[idx + 1 :]
                return line
            if len(self._buf) > protocol.MAX_LINE_BYTES:
                raise SpecError(
                    f"request line exceeds {protocol.MAX_LINE_BYTES} bytes"
                )
            if self._closing.is_set():
                return None
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not chunk:
                if self._buf:
                    line, self._buf = self._buf, b""
                    return line
                return None
            self._buf += chunk

    def read_exact(self, count: int) -> Optional[bytes]:
        """Exactly *count* bytes (HTTP bodies); ``None`` on EOF/shutdown."""
        while len(self._buf) < count:
            if self._closing.is_set():
                return None
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not chunk:
                return None
            self._buf += chunk
        body, self._buf = self._buf[:count], self._buf[count:]
        return body


class SkylineServer:
    """Serve one resident dataset over TCP with admission control."""

    def __init__(
        self,
        engine,
        handle,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 4,
        max_waiting: int = 32,
        default_deadline_ms: Optional[int] = None,
        drain_timeout: float = 10.0,
    ):
        self.engine = engine
        self.handle = handle
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_waiting=max_waiting
        )
        self.default_deadline_ms = default_deadline_ms
        self.drain_timeout = float(drain_timeout)
        self._closing = threading.Event()
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._connections: Dict[int, socket.socket] = {}
        self._conn_threads: Dict[int, threading.Thread] = {}
        self._next_conn = 0
        self._accept_thread: Optional[threading.Thread] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-net-query"
        )
        registry = obs_metrics.get_registry()
        self._c_accepts = registry.counter(
            "net_accepts_total", "TCP connections accepted by the server"
        )
        self._c_requests = registry.counter(
            "net_requests_total", "Requests received, by operation", ("op",)
        )
        self._c_responses = registry.counter(
            "net_responses_total", "Responses sent, by status", ("status",)
        )
        self._c_timeouts = registry.counter(
            "net_timeouts_total",
            "Requests that hit their deadline (waiting or executing)",
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.settimeout(_POLL_SECONDS)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "SkylineServer":
        """Accept connections on a background thread (tests, examples)."""
        if self._accept_thread is not None:
            raise RuntimeError("server already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until shutdown.

        Used by ``repro serve --listen``; pair with
        :meth:`install_signal_handlers` so SIGTERM/SIGINT trigger a
        drain instead of a stack trace.
        """
        self._accept_loop()
        self._closed.wait()

    def install_signal_handlers(self) -> None:
        import signal

        def _request_shutdown(signum, frame):  # noqa: ARG001
            obs_runlog.emit(
                "net_shutdown", scope="net", reason=f"signal {signum}"
            )
            # Only flip the flag here; the accept loop exits and runs
            # the drain outside signal context.
            self._closing.set()

        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)

    def shutdown(self) -> None:
        """Stop accepting, drain in-flight queries, close every socket."""
        self._closing.set()
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join(timeout=self.drain_timeout + 2 * _POLL_SECONDS)
        else:
            self._drain_and_close()
        self._closed.wait(timeout=self.drain_timeout + 2 * _POLL_SECONDS)

    def _drain_and_close(self) -> None:
        if self._closed.is_set():
            return
        drained = self.admission.drain(timeout=self.drain_timeout)
        obs_runlog.emit("net_drain", scope="net", drained=drained)
        # Give connection threads one poll cycle to flush their final
        # response, then force-close anything still open.
        with self._lock:
            threads = list(self._conn_threads.values())
        for thread in threads:
            thread.join(timeout=2 * _POLL_SECONDS)
        with self._lock:
            leftovers = list(self._connections.values())
            self._connections.clear()
        for sock in leftovers:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already gone
                pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        self._executor.shutdown(wait=False)
        self._closed.set()

    def __enter__(self) -> "SkylineServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # accept / connection loops

    def _accept_loop(self) -> None:
        try:
            while not self._closing.is_set():
                try:
                    sock, peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                sock.settimeout(_POLL_SECONDS)
                with self._lock:
                    conn_id = self._next_conn
                    self._next_conn += 1
                    self._connections[conn_id] = sock
                self._c_accepts.inc(1)
                obs_runlog.emit(
                    "net_accept",
                    scope="net",
                    conn=conn_id,
                    peer=f"{peer[0]}:{peer[1]}",
                )
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn_id, sock),
                    name=f"repro-net-conn-{conn_id}",
                    daemon=True,
                )
                with self._lock:
                    self._conn_threads[conn_id] = thread
                thread.start()
        finally:
            self._drain_and_close()

    def _serve_connection(self, conn_id: int, sock: socket.socket) -> None:
        reader = _LineReader(sock, self._closing)
        try:
            first = reader.readline()
            if first is None:
                return
            if _HTTP_REQUEST_LINE.match(first.strip()):
                self._serve_http(conn_id, sock, reader, first.strip())
                return
            line: Optional[bytes] = first
            while line is not None:
                if line.strip():
                    response = self._handle_frame(conn_id, line)
                    sock.sendall(protocol.encode_frame(response))
                line = reader.readline()
        except SpecError as exc:
            # Oversized line: report once, then drop the connection.
            try:
                sock.sendall(
                    protocol.encode_frame(
                        protocol.error_frame(
                            None, protocol.ERROR_BAD_REQUEST, str(exc)
                        )
                    )
                )
            except OSError:
                pass
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                self._connections.pop(conn_id, None)
                self._conn_threads.pop(conn_id, None)

    # ------------------------------------------------------------------
    # JSONL request handling

    def _handle_frame(self, conn_id: int, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        started = time.perf_counter()
        try:
            frame = protocol.decode_frame(line)
            request_id = frame.pop("id", None)
            op = frame.pop("op", "query")
            deadline_ms = frame.pop("deadline_ms", self.default_deadline_ms)
            if not isinstance(op, str):
                raise SpecError(f"'op' must be a string, got {op!r}")
            self._c_requests.inc(1, op=op)
            obs_runlog.emit(
                "net_request",
                scope="net",
                conn=conn_id,
                id=request_id,
                op=op,
            )
            if op == "ping":
                payload: Mapping = {
                    "pong": True,
                    "version": protocol.PROTOCOL_VERSION,
                }
            elif op == "stats":
                payload = self._stats_payload()
            elif op == "explain":
                payload = self._run_explain(frame)
            elif op == "query":
                payload = self._run_query_op(
                    conn_id, request_id, frame, deadline_ms
                )
            else:
                raise SpecError(
                    f"unknown op {op!r}; expected one of"
                    " ['explain', 'ping', 'query', 'stats']"
                )
        except SpecError as exc:
            return self._error(
                conn_id, request_id, started, protocol.ERROR_BAD_REQUEST, exc
            )
        except (ValueError, TypeError, KeyError) as exc:
            # Engine-side validation (bad gamma range, unknown algorithm
            # name, dims out of bounds...) — still the client's fault.
            return self._error(
                conn_id, request_id, started, protocol.ERROR_BAD_REQUEST, exc
            )
        except AdmissionRejected as exc:
            return self._error(
                conn_id, request_id, started, protocol.ERROR_OVERLOADED, exc
            )
        except (AdmissionTimeout, QueryDeadlineExpired) as exc:
            self._c_timeouts.inc(1)
            obs_runlog.emit(
                "net_timeout",
                scope="net",
                conn=conn_id,
                id=request_id,
                message=str(exc),
            )
            return self._error(
                conn_id, request_id, started, protocol.ERROR_TIMEOUT, exc
            )
        except AdmissionClosed as exc:
            return self._error(
                conn_id,
                request_id,
                started,
                protocol.ERROR_SHUTTING_DOWN,
                exc,
            )
        except Exception as exc:  # noqa: BLE001 - last-resort frame
            obs_runlog.emit_error("net_internal_error", exc, scope="net")
            return self._error(
                conn_id, request_id, started, protocol.ERROR_INTERNAL, exc
            )
        self._c_responses.inc(1, status="ok")
        obs_runlog.emit(
            "net_response",
            scope="net",
            conn=conn_id,
            id=request_id,
            status="ok",
            elapsed_seconds=time.perf_counter() - started,
        )
        return protocol.ok_frame(request_id, payload)

    def _error(
        self, conn_id, request_id, started, code: str, exc: BaseException
    ) -> Dict[str, Any]:
        self._c_responses.inc(1, status=code)
        obs_runlog.emit(
            "net_response",
            scope="net",
            conn=conn_id,
            id=request_id,
            status=code,
            message=str(exc),
            elapsed_seconds=time.perf_counter() - started,
        )
        return protocol.error_frame(request_id, code, str(exc))

    # ------------------------------------------------------------------
    # operations

    def _run_query_op(
        self,
        conn_id: int,
        request_id: Any,
        spec: Mapping[str, Any],
        deadline_ms: Optional[Any],
    ) -> Dict[str, Any]:
        kwargs = protocol.validate_spec(spec)
        if kwargs.pop("explain", False):
            return self._run_explain(kwargs, validated=True)
        deadline = self._deadline_from_ms(deadline_ms)
        self.admission.admit(deadline=deadline)
        started = time.perf_counter()
        future = self._executor.submit(
            self.engine.query, self.handle, **kwargs
        )
        # The slot is held until the query truly finishes — even when
        # the requester has already timed out — so pool pressure never
        # exceeds max_inflight.
        future.add_done_callback(lambda _f: self.admission.release())
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        try:
            result = future.result(timeout=timeout)
        except FutureTimeout:
            raise QueryDeadlineExpired(
                f"query exceeded its deadline of {deadline_ms} ms; the"
                " engine pool keeps running and the slot frees when the"
                " query completes"
            ) from None
        return protocol.result_payload(
            result, elapsed_seconds=time.perf_counter() - started
        )

    def _run_explain(
        self, spec: Mapping[str, Any], *, validated: bool = False
    ) -> Dict[str, Any]:
        kwargs = dict(spec) if validated else protocol.validate_spec(spec)
        kwargs.pop("explain", None)
        kwargs.setdefault("algorithm", "auto")
        plan = self.engine.explain(self.handle, **kwargs)
        return {"plan": plan}

    def _stats_payload(self) -> Dict[str, Any]:
        stats = self.engine.stats
        return {
            "version": protocol.PROTOCOL_VERSION,
            "admission": self.admission.snapshot(),
            "engine": {
                "attaches": stats.attaches,
                "queries": stats.queries,
                "warm_queries": stats.warm_queries,
                "cold_queries": stats.cold_queries,
                "batches": stats.batches,
                "slot_respawns": stats.slot_respawns,
            },
        }

    @staticmethod
    def _deadline_from_ms(deadline_ms: Optional[Any]) -> Optional[float]:
        if deadline_ms is None:
            return None
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            raise SpecError(
                f"'deadline_ms' expects a positive number of milliseconds,"
                f" got {deadline_ms!r} (example: \"deadline_ms\": 2000)"
            )
        return time.monotonic() + float(deadline_ms) / 1000.0

    # ------------------------------------------------------------------
    # HTTP/1.1 shim

    _HTTP_STATUS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }

    def _serve_http(
        self,
        conn_id: int,
        sock: socket.socket,
        reader: _LineReader,
        request_line: bytes,
    ) -> None:
        """One HTTP request, then ``Connection: close``.

        ``POST`` anywhere with a JSON body (one spec object or a list
        of them) runs queries; ``GET`` returns the stats payload.
        """
        try:
            method = request_line.split(b" ", 1)[0].decode("ascii")
        except UnicodeDecodeError:  # pragma: no cover - matched ASCII regex
            method = "?"
        content_length = 0
        while True:
            header = reader.readline()
            if header is None:
                return
            header = header.strip()
            if not header:
                break
            name, _, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1
        self._c_requests.inc(1, op=f"http_{method.lower()}")
        obs_runlog.emit(
            "net_request", scope="net", conn=conn_id, op=f"http_{method.lower()}"
        )
        if method == "GET":
            self._send_http(sock, 200, self._stats_payload())
            self._c_responses.inc(1, status="ok")
            return
        if method != "POST":
            self._send_http(
                sock, 405, {"error": {"code": protocol.ERROR_BAD_REQUEST,
                                      "message": f"unsupported method {method}"}}
            )
            self._c_responses.inc(1, status=protocol.ERROR_BAD_REQUEST)
            return
        if content_length < 0 or content_length > protocol.MAX_LINE_BYTES:
            self._send_http(
                sock, 400, {"error": {"code": protocol.ERROR_BAD_REQUEST,
                                      "message": "invalid Content-Length"}}
            )
            self._c_responses.inc(1, status=protocol.ERROR_BAD_REQUEST)
            return
        body = reader.read_exact(content_length) if content_length else b""
        if body is None:
            return
        status, payload = self._http_post(conn_id, body)
        self._send_http(sock, status, payload)
        self._c_responses.inc(
            1, status="ok" if status == 200 else payload["error"]["code"]
        )

    def _http_post(
        self, conn_id: int, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        code_to_status = {
            protocol.ERROR_BAD_REQUEST: 400,
            protocol.ERROR_OVERLOADED: 503,
            protocol.ERROR_TIMEOUT: 504,
            protocol.ERROR_SHUTTING_DOWN: 503,
            protocol.ERROR_INTERNAL: 500,
        }
        try:
            parsed = json.loads(body.decode("utf-8", errors="replace") or "null")
        except json.JSONDecodeError as exc:
            return 400, {
                "error": {
                    "code": protocol.ERROR_BAD_REQUEST,
                    "message": f"invalid JSON body: {exc}",
                }
            }
        specs = parsed if isinstance(parsed, list) else [parsed]
        results = []
        for index, spec in enumerate(specs):
            frame = dict(spec) if isinstance(spec, Mapping) else spec
            if isinstance(frame, Mapping):
                frame = {"id": index, "op": "query", **frame}
                encoded = protocol.encode_frame(frame).rstrip(b"\n")
            else:
                encoded = json.dumps(frame).encode("utf-8")
            response = self._handle_frame(conn_id, encoded)
            if not response.get("ok"):
                status = code_to_status.get(
                    response["error"].get("code"), 500
                )
                return status, {"error": response["error"]}
            results.append(response["result"])
        if isinstance(parsed, list):
            return 200, {"results": results}
        return 200, results[0]

    def _send_http(
        self, sock: socket.socket, status: int, payload: Mapping
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {self._HTTP_STATUS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            sock.sendall(head + body)
        except OSError:  # pragma: no cover - client went away
            pass
