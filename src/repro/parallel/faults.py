"""Fault injection for the worker pool (testing and demos only).

The fault-tolerance layer in :mod:`repro.parallel.executor` — crash
detection, chunk retry, serial fallback — is only trustworthy if worker
failure is reproducible on demand.  This module provides the injection
harness: a :class:`FaultSpec` describing *what* goes wrong (a
SIGKILL-style crash, a hang, a slow chunk, a raised exception), *when*
(at the k-th chunk a worker runs, or with probability ``p`` per chunk)
and *how often* (``max_fires`` across the whole run, enforced through a
shared counter so retried pools do not re-fire an already-spent fault).

Activation is strictly opt-in, through either

* the ``faults=FaultSpec(...)`` argument of
  :func:`repro.parallel.executor.run_spans` (or of
  :class:`repro.engine.SkylineEngine`, whose persistent workers arm the
  same spec — this is how the slot-respawn tests kill exactly one
  resident worker), or
* the ``REPRO_FAULTS`` environment variable, parsed by
  :meth:`FaultSpec.from_env` with the same mini-language as
  :meth:`FaultSpec.from_spec`::

      REPRO_FAULTS="crash@0"              # first chunk of a worker: SIGKILL
      REPRO_FAULTS="exception@2"          # third chunk: raise InjectedFaultError
      REPRO_FAULTS="crash:p=0.5,fires=3"  # each chunk: 50% crash, at most 3 total
      REPRO_FAULTS="hang"                 # first chunk sleeps past pool_timeout
      REPRO_FAULTS="slow@1:delay=0.5"     # second chunk takes an extra 500ms

The armed fault lives in pool *workers* only (installed by the pool
initializer); the parent process and the inline / serial-fallback code
paths never fire, which is what lets an exhausted-retry run still finish
correctly on the parent's serial engine.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "FaultSpec",
    "ArmedFault",
    "InjectedFaultError",
]

#: Environment variable carrying a fault spec string (see module docstring).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Supported failure modes.
#:
#: * ``"crash"`` — the worker SIGKILLs itself (``os._exit`` where no
#:   SIGKILL exists): death without cleanup, the OOM-killer/segfault model.
#: * ``"hang"`` — the worker sleeps ``delay`` seconds (default: far past
#:   any sane ``pool_timeout``) while staying alive, the wedged-pool model.
#: * ``"slow"`` — the chunk takes an extra ``delay`` seconds, then
#:   completes normally (straggler model; results stay correct).
#: * ``"exception"`` — the chunk raises :class:`InjectedFaultError`, the
#:   worker-traceback model (the worker itself survives).
FAULT_KINDS = ("crash", "hang", "slow", "exception")

#: Default sleep for ``kind="hang"`` — effectively forever next to any
#: realistic ``pool_timeout``.
HANG_SECONDS = 3600.0


class InjectedFaultError(RuntimeError):
    """Raised inside a worker by ``kind="exception"`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one injected worker fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at_chunk:
        Fire when a worker process runs its ``at_chunk``-th chunk
        (0-based, counted per worker).  Mutually composable with
        ``probability``: when both are unset the fault arms on every
        chunk (subject to ``max_fires``).
    probability:
        Fire with this per-chunk probability (deterministic given
        ``seed``, the worker pid and the worker-local chunk counter).
    max_fires:
        Total firings across the whole run, *including retried pools* —
        enforced via a shared counter created by the executor, so a
        ``max_fires=1`` crash hits the first pool and spares the retry.
    delay:
        Sleep seconds for ``slow`` (and override for ``hang``).
    seed:
        Seed for the probabilistic trigger.
    """

    kind: str
    at_chunk: Optional[int] = None
    probability: Optional[float] = None
    max_fires: int = 1
    delay: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at_chunk is not None and self.at_chunk < 0:
            raise ValueError(f"at_chunk must be >= 0, got {self.at_chunk}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.delay is not None and self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    # ------------------------------------------------------------------
    # parsing

    @classmethod
    def from_spec(cls, spec: str) -> "FaultSpec":
        """Parse ``kind[@chunk][:key=value,...]`` (see module docstring).

        Keys: ``p``/``probability``, ``fires``/``max_fires``, ``delay``,
        ``seed``.
        """
        spec = spec.strip()
        head, _, options = spec.partition(":")
        kind, _, chunk = head.partition("@")
        kwargs: dict = {"kind": kind.strip()}
        if chunk.strip():
            kwargs["at_chunk"] = int(chunk)
        for item in options.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad fault spec item {item!r}; expected key=value"
                )
            key, _, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key in ("p", "probability"):
                kwargs["probability"] = float(raw)
            elif key in ("fires", "max_fires"):
                kwargs["max_fires"] = int(raw)
            elif key == "delay":
                kwargs["delay"] = float(raw)
            elif key == "seed":
                kwargs["seed"] = int(raw)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """The ``$REPRO_FAULTS`` fault, or ``None`` when unset/empty."""
        value = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not value:
            return None
        return cls.from_spec(value)

    # ------------------------------------------------------------------

    def arm(self, state=None) -> "ArmedFault":
        """Bind this spec to a shared fire-budget ``state`` (worker side)."""
        return ArmedFault(self, state)


class ArmedFault:
    """A :class:`FaultSpec` installed in one worker process.

    ``maybe_fire`` is called once per chunk by the worker's task body;
    the worker-local chunk counter lives here, the cross-process fire
    budget in the shared ``state`` (a ``multiprocessing.Value``) the
    executor created alongside the pool.
    """

    def __init__(self, spec: FaultSpec, state=None):
        self.spec = spec
        self._state = state
        self.chunks_seen = 0

    # ------------------------------------------------------------------

    def _triggered(self, chunk_index: int) -> bool:
        spec = self.spec
        if spec.at_chunk is not None and chunk_index != spec.at_chunk:
            return False
        if spec.probability is not None:
            # Deterministic per (seed, pid, chunk): mix into one int, since
            # random.Random only seeds from scalars.
            mixed = (
                spec.seed * 0x9E3779B1
                + os.getpid() * 0x85EBCA77
                + chunk_index
            ) & 0xFFFFFFFF
            return random.Random(mixed).random() < spec.probability
        return True

    def _claim_budget(self) -> bool:
        """Spend one firing from the shared budget (True when granted)."""
        state = self._state
        if state is None:
            return True
        with state.get_lock():
            if state.value >= self.spec.max_fires:
                return False
            state.value += 1
            return True

    def maybe_fire(self) -> None:
        """Fire the fault if this chunk triggers it and budget remains."""
        chunk_index = self.chunks_seen
        self.chunks_seen += 1
        if not self._triggered(chunk_index):
            return
        if not self._claim_budget():
            return
        self._fire(chunk_index)

    # ------------------------------------------------------------------

    def _fire(self, chunk_index: int) -> None:
        spec = self.spec
        if spec.kind == "crash":
            # Die the way an OOM kill or segfault does: no cleanup, no
            # exception machinery, no exit handlers.
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(1)  # pragma: no cover - non-POSIX fallback
        if spec.kind == "hang":
            time.sleep(spec.delay if spec.delay is not None else HANG_SECONDS)
            return
        if spec.kind == "slow":
            time.sleep(spec.delay if spec.delay is not None else 0.1)
            return
        raise InjectedFaultError(
            f"injected fault at worker pid {os.getpid()}, chunk {chunk_index}"
        )
