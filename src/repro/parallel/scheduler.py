"""Work-stealing chunk scheduling for skewed workloads.

The PR-2 executor cut the pair space into ``workers * chunks_per_worker``
near-equal contiguous spans and let ``Pool.map`` hand them out.  That is
fine when every pair costs the same, but aggregate-skyline work is
anything but uniform: under a Zipfian group-size distribution one pair
involving the head group can cost orders of magnitude more record-pair
checks than a tail-tail pair, so a near-equal *pair-count* split is a
wildly unequal *work* split and the pool convoy-waits on one straggler.

This module provides the classic remedy — guided self-scheduling plus
work stealing:

* :func:`guided_spans` cuts the index space into chunks of *decreasing*
  size: early chunks are large (low scheduling overhead while everyone
  is busy), late chunks are small (fine-grained slack to balance the
  tail).
* :func:`assign_owners` deals the chunks round-robin to worker slots, so
  each slot's private run-queue is itself big→small.
* :class:`ChunkLedger` is the shared claim table: a worker takes from
  the *front* of its own queue (largest remaining chunk) and, when its
  queue is drained, **steals from the tail** of the most-loaded victim's
  queue (the smallest chunks — cheap to migrate, perfect tail filler).

The ledger is deliberately storage-agnostic: in pool workers the claim
table is a ``multiprocessing.RawArray`` guarded by a shared ``Lock``; in
tests it is a plain ``bytearray`` with a no-op lock, which makes the
"every chunk claimed exactly once under any steal order" property
directly checkable in-process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "guided_spans",
    "assign_owners",
    "ChunkLedger",
    "WorkerReport",
    "default_min_chunk",
]


def default_min_chunk(total: int, workers: int) -> int:
    """Heuristic smallest chunk: keep scheduling overhead ~1% of work."""

    return max(1, total // max(1, workers * 64))


def guided_spans(
    total: int,
    workers: int,
    min_chunk: Optional[int] = None,
    factor: int = 2,
) -> List[Tuple[int, int]]:
    """Guided self-scheduling spans over ``[0, total)``.

    Chunk ``k`` covers ``remaining / (factor * workers)`` indices (never
    below ``min_chunk``), so sizes decay geometrically: the first chunks
    are big, the last are ``min_chunk``-sized crumbs that fill stragglers'
    idle tails.
    """

    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if min_chunk is None:
        min_chunk = default_min_chunk(total, workers)
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    spans: List[Tuple[int, int]] = []
    start = 0
    while start < total:
        remaining = total - start
        size = max(min_chunk, remaining // (factor * workers))
        size = min(size, remaining)
        spans.append((start, start + size))
        start += size
    return spans


def assign_owners(n_chunks: int, workers: int) -> List[List[int]]:
    """Deal chunk ids round-robin to ``workers`` slots.

    With :func:`guided_spans`' decreasing sizes this leaves every slot's
    private queue ordered big→small, which is exactly what the ledger's
    front-of-own / tail-of-victim discipline wants.
    """

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    queues: List[List[int]] = [[] for _ in range(workers)]
    for chunk in range(n_chunks):
        queues[chunk % workers].append(chunk)
    return queues


class _NullLock:
    """Context-manager no-op lock for in-process ledgers."""

    def __enter__(self):  # pragma: no cover - trivial
        return self

    def __exit__(self, *exc):  # pragma: no cover - trivial
        return False


class ChunkLedger:
    """Shared claim table implementing own-queue-first work stealing.

    Parameters
    ----------
    owners:
        ``owners[slot]`` lists the chunk ids dealt to worker ``slot``
        (front = largest).  The lists themselves are immutable; progress
        lives entirely in ``claimed``.
    claimed:
        Byte-per-chunk claim flags — a ``multiprocessing.RawArray('B')``
        for pools, a ``bytearray`` in-process.  0 = free, 1 = claimed.
    lock:
        Context manager guarding claim transitions.  A shared
        ``multiprocessing.Lock`` for pools; defaults to a no-op for
        single-threaded use.
    """

    def __init__(self, owners: Sequence[Sequence[int]], claimed, lock=None):
        self.owners = [list(queue) for queue in owners]
        self.claimed = claimed
        self.lock = lock if lock is not None else _NullLock()
        total = sum(len(queue) for queue in self.owners)
        if total != len(claimed):
            raise ValueError(
                f"claim table holds {len(claimed)} chunks but owners list {total}"
            )
        seen = [chunk for queue in self.owners for chunk in queue]
        if sorted(seen) != list(range(len(claimed))):
            raise ValueError("owners must partition range(n_chunks) exactly")

    def claim(self, slot: int) -> Optional[Tuple[int, bool]]:
        """Claim the next chunk for worker *slot*.

        Returns ``(chunk_id, stolen)`` or ``None`` when every chunk is
        claimed.  Own queue is scanned front-to-back (largest first);
        when empty the victim with the most unclaimed chunks is robbed
        from the tail (smallest first).
        """

        with self.lock:
            # 1. own queue, front to back
            for chunk in self.owners[slot]:
                if not self.claimed[chunk]:
                    self.claimed[chunk] = 1
                    return chunk, False
            # 2. steal from the most-loaded victim's tail
            best_victim = -1
            best_load = 0
            for victim, queue in enumerate(self.owners):
                if victim == slot:
                    continue
                load = sum(1 for chunk in queue if not self.claimed[chunk])
                if load > best_load:
                    best_load = load
                    best_victim = victim
            if best_victim < 0:
                return None
            for chunk in reversed(self.owners[best_victim]):
                if not self.claimed[chunk]:
                    self.claimed[chunk] = 1
                    return chunk, True
        return None  # pragma: no cover - victim raced to empty

    def remaining(self) -> int:
        """Number of unclaimed chunks (diagnostic)."""

        with self.lock:
            return sum(1 for flag in self.claimed if not flag)


@dataclass
class WorkerReport:
    """Per-worker-slot scheduling telemetry sent back with the results."""

    slot: int
    worker_pid: int = 0
    chunks_done: int = 0
    chunks_stolen: int = 0
    idle_seconds: float = 0.0
    busy_seconds: float = 0.0
    chunk_seconds: List[float] = field(default_factory=list)
