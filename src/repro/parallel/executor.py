"""Process-pool execution of group-pair comparison chunks.

This is the machinery behind ``PAR``
(:class:`repro.core.algorithms.parallel.ParallelSkylineAlgorithm`): the
upper-triangular group-pair matrix is cut into contiguous linear-index
chunks (:mod:`repro.parallel.partition`), each chunk is compared by a pool
worker with its own :class:`~repro.core.comparator.GroupComparator`, and the
parent merges the compact verdict lists plus the per-chunk work counters.

Shipping the data once
----------------------
Group ndarrays are **never pickled per task**.  The pool is created with an
initializer that receives the full group list once:

* under the ``fork`` start method (Linux default) the worker inherits the
  parent's memory copy-on-write — zero serialization;
* under ``spawn`` the initializer arguments are pickled **once per worker**
  at pool start-up.

Tasks submitted afterwards are just ``(start, stop)`` linear-index ranges,
and results are compact ``(i, j, verdict-bits)`` triples for the (typically
sparse) pairs where some dominance verdict fired.

Pruning exchange
----------------
With ``exchange_interval > 0`` the workers additionally share a byte per
group (bit 0 = dominated, bit 1 = strongly dominated) in a lock-free
``RawArray``.  Every ``exchange_interval`` pairs a worker refreshes its
local snapshot and skips work the rest of the pool has already made
redundant:

* ``prune_policy="paper"`` — pairs with a *strongly* dominated endpoint are
  skipped entirely (the serial Algorithm-3 rule; the result carries the same
  superset-of-Definition-2 guarantee as serial ``TR``);
* ``prune_policy="safe"`` — only comparison *directions* that can no longer
  change any verdict are dropped, so the result stays exactly the
  Definition-2 skyline regardless of scheduling.

Flag writes are monotonic 0->1, so the unlocked read-modify-write races are
benign: a lost update can only cost a pruning opportunity, never
correctness — the authoritative verdicts always travel back to the parent
in the chunk results.  With ``exchange_interval == 0`` (the default) every
pair is compared exactly once in full, which makes the run — results *and*
work counters — bit-identical to serial ``NL`` for any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import sharedctypes
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.comparator import GroupComparator
from ..core.gamma import GammaThresholds
from ..core.groups import Group
from .partition import iter_pairs

__all__ = [
    "D12",
    "D12_STRONG",
    "D21",
    "D21_STRONG",
    "WorkerConfig",
    "ChunkOutcome",
    "resolve_workers",
    "preferred_start_method",
    "compare_span",
    "apply_verdicts",
    "execute_chunks",
    "PoolTimeoutError",
]

#: Verdict bit flags packed into one int per pair (forward = g_i over g_j).
D12, D12_STRONG, D21, D21_STRONG = 1, 2, 4, 8

#: Flag-byte bits of the shared pruning-exchange array.
_FLAG_DOMINATED, _FLAG_STRONG = 1, 2

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV_VAR = "REPRO_WORKERS"


class PoolTimeoutError(RuntimeError):
    """The worker pool failed to deliver results within ``pool_timeout``."""


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_WORKERS``,
    else ``min(4, cpu_count)``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            workers = int(env)
        else:
            workers = min(4, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def preferred_start_method() -> str:
    """``fork`` when the platform offers it (zero-copy data shipping)."""
    return "fork" if "fork" in mp.get_all_start_methods() else \
        mp.get_start_method(allow_none=False)


@dataclass(frozen=True)
class WorkerConfig:
    """Comparator + policy configuration shipped to each worker once."""

    gamma: object  # GammaLike; Fractions/floats pickle fine
    use_stopping_rule: bool = True
    use_bbox: bool = False
    block_size: int = 1024
    prune_policy: str = "paper"
    exchange_interval: int = 0


@dataclass
class ChunkOutcome:
    """What one chunk sent back: verdicts + the worker's work counters."""

    start: int
    stop: int
    verdicts: List[Tuple[int, int, int]] = field(default_factory=list)
    comparisons: int = 0
    pairs_examined: int = 0
    bbox_shortcuts: int = 0
    stopping_rule_exits: int = 0
    pairs_skipped: int = 0
    elapsed_seconds: float = 0.0
    worker_pid: int = 0


def _encode(outcome) -> int:
    code = 0
    if outcome.d12:
        code |= D12
    if outcome.d12_strong:
        code |= D12_STRONG
    if outcome.d21:
        code |= D21
    if outcome.d21_strong:
        code |= D21_STRONG
    return code


def apply_verdicts(state, verdicts: Sequence[Tuple[int, int, int]]) -> None:
    """Apply packed pair verdicts to a group-state (NL merge semantics)."""
    for i, j, code in verdicts:
        if code & D12_STRONG:
            state.mark_strong(j)
        elif code & D12:
            state.mark_dominated(j)
        if code & D21_STRONG:
            state.mark_strong(i)
        elif code & D21:
            state.mark_dominated(i)


def compare_span(
    groups: Sequence[Group],
    comparator: GroupComparator,
    span: Tuple[int, int],
    *,
    prune_policy: str = "paper",
    flags=None,
    exchange_interval: int = 0,
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Compare every pair in ``span`` (linear indices); the chunk kernel.

    Returns ``(verdicts, pairs_skipped)`` where ``verdicts`` holds only the
    pairs for which some dominance predicate fired.  ``flags`` (any
    byte-indexable, byte-assignable buffer — a shared ``RawArray`` in pool
    workers, a plain ``bytearray`` inline) enables the pruning exchange; the
    kernel refreshes its snapshot of it every ``exchange_interval`` pairs.
    """
    start, stop = span
    n = len(groups)
    verdicts: List[Tuple[int, int, int]] = []
    skipped = 0
    exchanging = flags is not None and exchange_interval > 0
    local = bytes(flags) if exchanging else b""
    since_refresh = 0
    for i, j in iter_pairs(start, stop, n):
        if exchanging:
            if since_refresh >= exchange_interval:
                local = bytes(flags)
                since_refresh = 0
            since_refresh += 1
            if prune_policy == "paper":
                if (local[i] | local[j]) & _FLAG_STRONG:
                    skipped += 1
                    continue
                need_forward = need_backward = True
            else:
                need_forward = not local[j] & _FLAG_DOMINATED
                need_backward = not local[i] & _FLAG_DOMINATED
                if not (need_forward or need_backward):
                    skipped += 1
                    continue
            outcome = comparator.compare(
                groups[i],
                groups[j],
                need_forward=need_forward,
                need_backward=need_backward,
            )
        else:
            outcome = comparator.compare(groups[i], groups[j])
        code = _encode(outcome)
        if not code:
            continue
        verdicts.append((i, j, code))
        if exchanging:
            # Publish monotonic marks (benign unlocked read-modify-write:
            # a lost bit only costs pruning, never correctness).
            if code & D12_STRONG:
                flags[j] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D12:
                flags[j] |= _FLAG_DOMINATED
            if code & D21_STRONG:
                flags[i] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D21:
                flags[i] |= _FLAG_DOMINATED
    return verdicts, skipped


# ----------------------------------------------------------------------
# pool plumbing: per-worker globals set once by the initializer
# ----------------------------------------------------------------------

_WORKER_GROUPS: Optional[Sequence[Group]] = None
_WORKER_COMPARATOR: Optional[GroupComparator] = None
_WORKER_CONFIG: Optional[WorkerConfig] = None
_WORKER_FLAGS = None


def _init_worker(groups, config: WorkerConfig, flags) -> None:
    """Pool initializer: receive the dataset once, build one comparator."""
    global _WORKER_GROUPS, _WORKER_COMPARATOR, _WORKER_CONFIG, _WORKER_FLAGS
    _WORKER_GROUPS = groups
    _WORKER_CONFIG = config
    _WORKER_FLAGS = flags
    _WORKER_COMPARATOR = GroupComparator(
        GammaThresholds(config.gamma),
        use_stopping_rule=config.use_stopping_rule,
        use_bbox=config.use_bbox,
        block_size=config.block_size,
    )


def _run_chunk(span: Tuple[int, int]) -> ChunkOutcome:
    """Task body executed in a pool worker: one chunk, counters reset."""
    assert _WORKER_GROUPS is not None and _WORKER_COMPARATOR is not None
    config = _WORKER_CONFIG
    comparator = _WORKER_COMPARATOR
    comparator.reset_stats()
    started = time.perf_counter()
    verdicts, skipped = compare_span(
        _WORKER_GROUPS,
        comparator,
        span,
        prune_policy=config.prune_policy,
        flags=_WORKER_FLAGS,
        exchange_interval=config.exchange_interval,
    )
    return ChunkOutcome(
        start=span[0],
        stop=span[1],
        verdicts=verdicts,
        comparisons=comparator.comparisons,
        pairs_examined=comparator.pairs_examined,
        bbox_shortcuts=comparator.bbox_shortcuts,
        stopping_rule_exits=comparator.stopping_rule_exits,
        pairs_skipped=skipped,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
    )


def execute_chunks(
    groups: Sequence[Group],
    config: WorkerConfig,
    spans: Sequence[Tuple[int, int]],
    workers: int,
    pool_timeout: float = 300.0,
) -> List[ChunkOutcome]:
    """Run ``spans`` over a ``workers``-sized process pool; ordered results.

    The dataset travels to the pool exactly once (see the module docstring);
    afterwards only tiny span tuples and compact verdict lists cross the
    process boundary.  A deadlocked or wedged pool raises
    :class:`PoolTimeoutError` after ``pool_timeout`` seconds instead of
    hanging the caller (and CI) forever.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not spans:
        return []
    ctx = mp.get_context(preferred_start_method())
    flags = (
        sharedctypes.RawArray("B", len(groups))
        if config.exchange_interval > 0
        else None
    )
    pool = ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(list(groups), config, flags),
    )
    try:
        pending = pool.map_async(_run_chunk, list(spans), chunksize=1)
        try:
            outcomes = pending.get(timeout=pool_timeout)
        except mp.TimeoutError:
            raise PoolTimeoutError(
                f"parallel skyline pool produced no result within"
                f" {pool_timeout:.0f}s ({workers} workers,"
                f" {len(spans)} chunks); pool terminated"
            ) from None
    finally:
        pool.terminate()
        pool.join()
    return outcomes
