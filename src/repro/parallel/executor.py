"""Process-pool execution of group-pair comparison chunks.

This is the machinery behind ``PAR``
(:class:`repro.core.algorithms.parallel.ParallelSkylineAlgorithm`): the
upper-triangular group-pair matrix is cut into contiguous linear-index
chunks (:mod:`repro.parallel.partition`), each chunk is compared by a pool
worker with its own :class:`~repro.core.comparator.GroupComparator`, and the
parent merges the compact verdict lists plus the per-chunk work counters.

Shipping the data once
----------------------
Group ndarrays are **never pickled per task**.  The pool is created with an
initializer that receives the full group list once:

* under the ``fork`` start method (Linux default) the worker inherits the
  parent's memory copy-on-write — zero serialization;
* under ``spawn`` the initializer arguments are pickled **once per worker**
  at pool start-up.

Tasks submitted afterwards are just ``(start, stop)`` linear-index ranges,
and results are compact ``(i, j, verdict-bits)`` triples for the (typically
sparse) pairs where some dominance verdict fired.

Pruning exchange
----------------
With ``exchange_interval > 0`` the workers additionally share a byte per
group (bit 0 = dominated, bit 1 = strongly dominated) in a lock-free
``RawArray``.  Every ``exchange_interval`` pairs a worker refreshes its
local snapshot and skips work the rest of the pool has already made
redundant:

* ``prune_policy="paper"`` — pairs with a *strongly* dominated endpoint are
  skipped entirely (the serial Algorithm-3 rule; the result carries the same
  superset-of-Definition-2 guarantee as serial ``TR``);
* ``prune_policy="safe"`` — only comparison *directions* that can no longer
  change any verdict are dropped, so the result stays exactly the
  Definition-2 skyline regardless of scheduling.

Flag writes are monotonic 0->1, so the unlocked read-modify-write races are
benign: a lost update can only cost a pruning opportunity, never
correctness — the authoritative verdicts always travel back to the parent
in the chunk results.  With ``exchange_interval == 0`` (the default) every
pair is compared exactly once in full, which makes the run — results *and*
work counters — bit-identical to serial ``NL`` for any worker count.

Fault tolerance
---------------
Every chunk is an independent, deterministic unit of work, so losing a
worker must never lose the run.  The parent polls worker liveness while
draining results: a worker that dies (OOM kill, segfault, ``os._exit``)
raises :class:`WorkerCrashError` within about one liveness-poll interval
(:data:`_LIVENESS_POLL_SECONDS` seconds) — naming the pid, signal and the unfinished chunk spans — instead
of hanging until ``pool_timeout``.  What happens next is policy
(``on_failure``): ``"raise"`` fails fast (the default), ``"retry"``
re-executes *only the lost chunks* on a fresh pool up to ``max_retries``
times with exponential backoff, and ``"serial"`` additionally finishes any
still-missing chunks inline on the parent after retries are exhausted.
Because retried and fallback chunks re-run the same deterministic spans
with the same kernel, a recovered run's results and work counters are
bit-identical to an undisturbed one.  :mod:`repro.parallel.faults`
injects worker failures on demand to keep all of this testable.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal as signal_module
import time
from multiprocessing import sharedctypes
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.comparator import GroupComparator
from ..core.gamma import GammaThresholds
from ..core.groups import Group
from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from ..obs import tracing as obs_tracing
from ..obs.tracing import TraceContext, Tracer
from .faults import ArmedFault, FaultSpec
from .partition import iter_pairs
from .scheduler import ChunkLedger, WorkerReport, assign_owners
from .shm import (
    GroupShipment,
    ShmArena,
    load_arrays,
    load_groups,
    ship_arrays,
    ship_groups,
    shm_available,
)

__all__ = [
    "D12",
    "D12_STRONG",
    "D21",
    "D21_STRONG",
    "WorkerConfig",
    "ChunkOutcome",
    "PoolRun",
    "resolve_workers",
    "preferred_start_method",
    "comparator_for",
    "compare_span",
    "compare_candidate_span",
    "apply_verdicts",
    "execute_chunks",
    "execute_span_inline",
    "run_spans",
    "map_tasks",
    "PoolTimeoutError",
    "WorkerCrashError",
    "ON_FAILURE_POLICIES",
]

#: Verdict bit flags packed into one int per pair (forward = g_i over g_j).
D12, D12_STRONG, D21, D21_STRONG = 1, 2, 4, 8

#: Flag-byte bits of the shared pruning-exchange array.
_FLAG_DOMINATED, _FLAG_STRONG = 1, 2

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable forcing a multiprocessing start method (``fork`` /
#: ``spawn`` / ``forkserver``).  CI uses ``REPRO_START_METHOD=spawn`` to
#: exercise the shared-memory shipping path on Linux.
START_METHOD_ENV_VAR = "REPRO_START_METHOD"


#: What to do when a pool worker crashes or a chunk raises (see
#: :class:`repro.core.execution.ExecutionConfig`): fail fast, retry the
#: lost chunks on a fresh pool, or finish them serially after retries.
ON_FAILURE_POLICIES: Tuple[str, ...] = ("raise", "retry", "serial")


class PoolTimeoutError(RuntimeError):
    """The worker pool failed to deliver results within ``pool_timeout``."""


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-run (SIGKILL, segfault, ``os._exit``...).

    Raised by the liveness poll in :func:`_collect_results` within
    seconds of the death — long before ``pool_timeout`` — carrying
    everything the retry layer (or the caller) needs to re-execute
    exactly the lost work:

    Attributes
    ----------
    pids:
        Pids of the dead worker processes.
    exitcodes:
        Their ``Process.exitcode`` values (negative = killed by signal).
    signals:
        Human-readable signal names where the exitcode was a signal
        death (e.g. ``["SIGKILL"]``), empty strings otherwise.
    lost_spans:
        The ``(start, stop)`` chunk spans that had not been delivered
        when the crash was detected — the exact re-runnable remainder.
    """

    def __init__(
        self,
        message: str,
        *,
        pids: Sequence[int] = (),
        exitcodes: Sequence[int] = (),
        lost_spans: Sequence[Tuple[int, int]] = (),
    ):
        super().__init__(message)
        self.pids = tuple(pids)
        self.exitcodes = tuple(exitcodes)
        self.signals = tuple(_signal_name(code) for code in self.exitcodes)
        self.lost_spans = tuple(tuple(span) for span in lost_spans)


def _signal_name(exitcode: Optional[int]) -> str:
    """Signal name for a negative exitcode; empty string otherwise."""
    if exitcode is None or exitcode >= 0:
        return ""
    try:
        return signal_module.Signals(-exitcode).name
    except ValueError:  # pragma: no cover - unknown signal number
        return f"signal {-exitcode}"


class _AttemptFailure(Exception):
    """Internal: one pool attempt failed; carries the partial results.

    ``partial`` holds the task results delivered before the failure
    (``ChunkOutcome`` for the static scheduler, ``(outcomes, report)``
    per slot for stealing), ``dead`` the ``(pid, exitcode)`` of crashed
    workers and ``cause`` the worker exception when the failure was a
    raised traceback rather than a death.
    """

    def __init__(self, partial: List, dead: List, cause: Optional[BaseException]):
        super().__init__("pool attempt failed")
        self.partial = partial
        self.dead = dead
        self.cause = cause


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_WORKERS``,
    else ``min(4, cpu_count)``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            workers = int(env)
        else:
            workers = min(4, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def preferred_start_method() -> str:
    """Start method for the pool: ``$REPRO_START_METHOD`` override, else
    ``fork`` when the platform offers it (zero-copy data shipping)."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip().lower()
    if env:
        available = mp.get_all_start_methods()
        if env not in available:
            raise ValueError(
                f"{START_METHOD_ENV_VAR}={env!r} is not available on this"
                f" platform (choices: {available})"
            )
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else \
        mp.get_start_method(allow_none=False)


@dataclass(frozen=True)
class WorkerConfig:
    """Comparator + policy configuration shipped to each worker once."""

    gamma: object  # GammaLike; Fractions/floats pickle fine
    use_stopping_rule: bool = True
    use_bbox: bool = False
    block_size: int = 1024
    prune_policy: str = "paper"
    exchange_interval: int = 0


def comparator_for(config: WorkerConfig) -> GroupComparator:
    """A fresh comparator matching *config* — the one every execution site
    (pool initializer, serial fallback, engine workers) must build so that
    chunk counters stay bit-identical regardless of where a chunk runs."""
    return GroupComparator(
        GammaThresholds(config.gamma),
        use_stopping_rule=config.use_stopping_rule,
        use_bbox=config.use_bbox,
        block_size=config.block_size,
    )


@dataclass
class ChunkOutcome:
    """What one chunk sent back: verdicts + the worker's work counters."""

    start: int
    stop: int
    verdicts: List[Tuple[int, int, int]] = field(default_factory=list)
    comparisons: int = 0
    pairs_examined: int = 0
    bbox_shortcuts: int = 0
    stopping_rule_exits: int = 0
    pairs_skipped: int = 0
    elapsed_seconds: float = 0.0
    worker_pid: int = 0
    # candidate-slab runs (parallel IN/LO) additionally report the index
    # counters; stealing runs tag where the chunk actually executed.
    window_queries: int = 0
    index_candidates: int = 0
    slot: int = -1
    stolen: bool = False
    # finished worker-side span trees (Span.to_dict form), grafted back
    # onto the parent trace when tracing is enabled; empty otherwise.
    spans: List[dict] = field(default_factory=list)


def _encode(outcome) -> int:
    code = 0
    if outcome.d12:
        code |= D12
    if outcome.d12_strong:
        code |= D12_STRONG
    if outcome.d21:
        code |= D21
    if outcome.d21_strong:
        code |= D21_STRONG
    return code


def apply_verdicts(state, verdicts: Sequence[Tuple[int, int, int]]) -> None:
    """Apply packed pair verdicts to a group-state (NL merge semantics)."""
    for i, j, code in verdicts:
        if code & D12_STRONG:
            state.mark_strong(j)
        elif code & D12:
            state.mark_dominated(j)
        if code & D21_STRONG:
            state.mark_strong(i)
        elif code & D21:
            state.mark_dominated(i)


def compare_span(
    groups: Sequence[Group],
    comparator: GroupComparator,
    span: Tuple[int, int],
    *,
    prune_policy: str = "paper",
    flags=None,
    exchange_interval: int = 0,
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Compare every pair in ``span`` (linear indices); the chunk kernel.

    Returns ``(verdicts, pairs_skipped)`` where ``verdicts`` holds only the
    pairs for which some dominance predicate fired.  ``flags`` (any
    byte-indexable, byte-assignable buffer — a shared ``RawArray`` in pool
    workers, a plain ``bytearray`` inline) enables the pruning exchange; the
    kernel refreshes its snapshot of it every ``exchange_interval`` pairs.
    """
    start, stop = span
    n = len(groups)
    verdicts: List[Tuple[int, int, int]] = []
    skipped = 0
    exchanging = flags is not None and exchange_interval > 0
    local = bytes(flags) if exchanging else b""
    since_refresh = 0
    for i, j in iter_pairs(start, stop, n):
        if exchanging:
            if since_refresh >= exchange_interval:
                local = bytes(flags)
                since_refresh = 0
            since_refresh += 1
            if prune_policy == "paper":
                if (local[i] | local[j]) & _FLAG_STRONG:
                    skipped += 1
                    continue
                need_forward = need_backward = True
            else:
                need_forward = not local[j] & _FLAG_DOMINATED
                need_backward = not local[i] & _FLAG_DOMINATED
                if not (need_forward or need_backward):
                    skipped += 1
                    continue
            outcome = comparator.compare(
                groups[i],
                groups[j],
                need_forward=need_forward,
                need_backward=need_backward,
            )
        else:
            outcome = comparator.compare(groups[i], groups[j])
        code = _encode(outcome)
        if not code:
            continue
        verdicts.append((i, j, code))
        if exchanging:
            # Publish monotonic marks (benign unlocked read-modify-write:
            # a lost bit only costs pruning, never correctness).
            if code & D12_STRONG:
                flags[j] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D12:
                flags[j] |= _FLAG_DOMINATED
            if code & D21_STRONG:
                flags[i] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D21:
                flags[i] |= _FLAG_DOMINATED
    return verdicts, skipped


def compare_candidate_span(
    groups: Sequence[Group],
    comparator: GroupComparator,
    index,
    order: Sequence[int],
    span: Tuple[int, int],
) -> Tuple[List[Tuple[int, int, int]], int, int]:
    """The parallel IN/LO chunk kernel: one slab of candidate groups.

    For every candidate position in ``span`` (indices into ``order``), run
    the Algorithm-5 window query against the read-only ``index`` and probe
    the returned groups *backward only* — does anyone γ-dominate the
    candidate?  The loop breaks at the first dominator.

    This is the *independent-candidate* discipline: each group's verdict
    is a pure function of its own window loop (whose candidate order the
    flat index fixes deterministically), never of marks produced by other
    candidates.  The window is a superset of the candidate's dominators
    (``g2 ⊳ g1`` implies ``g2.max ∈ [g1.min, +inf)``), so the result is
    exactly the Definition-2 skyline — and both the verdicts *and every
    work counter* are invariant under any partitioning of the candidates
    across chunks, workers and steal orders.

    Returns ``(verdicts, window_queries, index_candidates)`` where the
    verdicts are ``(i, i, D21|D21_STRONG)`` self-marks.
    """
    start, stop = span
    upper = np.full(groups[0].dimensions, np.inf)
    verdicts: List[Tuple[int, int, int]] = []
    window_queries = 0
    index_candidates = 0
    for position in range(start, stop):
        i = order[position]
        g1 = groups[i]
        candidates = index.search_window(g1.bbox.min_corner, upper)
        window_queries += 1
        index_candidates += len(candidates)
        for j in candidates:
            if j == i:
                continue
            outcome = comparator.compare(
                g1, groups[j], need_forward=False, need_backward=True
            )
            if outcome.d21_strong:
                verdicts.append((i, i, D21_STRONG))
                break
            if outcome.d21:
                verdicts.append((i, i, D21))
                break
    return verdicts, window_queries, index_candidates


@dataclass
class PoolRun:
    """Everything a pooled run sent back: chunk results + scheduling telemetry."""

    outcomes: List[ChunkOutcome] = field(default_factory=list)
    reports: List[WorkerReport] = field(default_factory=list)


@dataclass
class _PoolPayload:
    """Initializer argument: the one-shot shipment to every worker."""

    shipment: GroupShipment
    config: WorkerConfig
    kind: str = "pairs"  # "pairs" | "candidates"
    flags: Any = None
    index_arrays: Optional[Dict[str, Any]] = None
    order: Optional[Tuple[int, ...]] = None
    spans: Optional[Tuple[Tuple[int, int], ...]] = None
    owners: Optional[Tuple[Tuple[int, ...], ...]] = None
    claimed: Any = None
    lock: Any = None
    trace: Optional[TraceContext] = None
    # fault injection (testing/demos): the spec plus the shared fire
    # budget, so retried pools don't re-fire a spent max_fires=1 fault.
    faults: Optional[FaultSpec] = None
    fault_state: Any = None


# ----------------------------------------------------------------------
# pool plumbing: per-worker globals set once by the initializer
# ----------------------------------------------------------------------

_WORKER_GROUPS: Optional[Sequence[Group]] = None
_WORKER_COMPARATOR: Optional[GroupComparator] = None
_WORKER_CONFIG: Optional[WorkerConfig] = None
_WORKER_FLAGS = None
_WORKER_KIND: str = "pairs"
_WORKER_INDEX = None
_WORKER_ORDER: Optional[Sequence[int]] = None
_WORKER_SPANS: Optional[Sequence[Tuple[int, int]]] = None
_WORKER_LEDGER: Optional[ChunkLedger] = None
_WORKER_FAULT: Optional[ArmedFault] = None


def _init_worker(groups, config: WorkerConfig, flags) -> None:
    """Pool initializer (legacy shape): inline dataset, pair kernel."""
    _init_pool(_PoolPayload(shipment=GroupShipment(inline=list(groups)),
                            config=config, flags=flags))


def _init_pool(payload: _PoolPayload) -> None:
    """Pool initializer: materialise the one-shot shipment into globals."""
    global _WORKER_GROUPS, _WORKER_COMPARATOR, _WORKER_CONFIG, _WORKER_FLAGS
    global _WORKER_KIND, _WORKER_INDEX, _WORKER_ORDER, _WORKER_SPANS
    global _WORKER_LEDGER, _WORKER_FAULT
    config = payload.config
    _WORKER_GROUPS = load_groups(payload.shipment)
    _WORKER_CONFIG = config
    _WORKER_FLAGS = payload.flags
    _WORKER_KIND = payload.kind
    _WORKER_ORDER = payload.order
    _WORKER_SPANS = payload.spans
    _WORKER_INDEX = None
    if payload.index_arrays is not None:
        from ..index.rtree import FlatRTree

        _WORKER_INDEX = FlatRTree.from_arrays(load_arrays(payload.index_arrays))
    _WORKER_LEDGER = None
    if payload.owners is not None:
        _WORKER_LEDGER = ChunkLedger(
            payload.owners, payload.claimed, payload.lock
        )
    _WORKER_FAULT = None
    if payload.faults is not None:
        _WORKER_FAULT = payload.faults.arm(payload.fault_state)
    _WORKER_COMPARATOR = comparator_for(config)
    # Observability hand-off.  A fork-started worker inherits the parent's
    # tracer and run-log handle; recording into either from here would
    # corrupt parent state (duplicate sink emits, interleaved writes).
    # Each worker therefore gets its own tracer parented on the shipped
    # TraceContext — or the no-op tracer when the parent wasn't tracing —
    # and a silenced run log (pool lifecycle is the parent's to record).
    if payload.trace is not None:
        obs_tracing.set_tracer(Tracer(context=payload.trace))
    else:
        obs_tracing.set_tracer(obs_tracing.NOOP_TRACER)
    obs_runlog.set_runlog(obs_runlog.NOOP_RUNLOG)


def _run_chunk(
    span: Tuple[int, int], slot: int = -1, stolen: bool = False
) -> ChunkOutcome:
    """Task body executed in a pool worker: one chunk, counters reset.

    When the worker tracer records (the parent shipped a
    :class:`~repro.obs.tracing.TraceContext`), the chunk runs inside a
    ``parallel.chunk`` span carrying the span bounds, the kernel kind and
    the scheduling telemetry (slot / stolen / pid); its serialized form
    travels back in :attr:`ChunkOutcome.spans` for the parent to graft
    onto its own tree.
    """
    assert _WORKER_GROUPS is not None and _WORKER_COMPARATOR is not None
    if _WORKER_FAULT is not None:
        _WORKER_FAULT.maybe_fire()
    config = _WORKER_CONFIG
    comparator = _WORKER_COMPARATOR
    comparator.reset_stats()
    chunk_span = obs_tracing.get_tracer().span(
        "parallel.chunk",
        start=span[0],
        stop=span[1],
        kind=_WORKER_KIND,
        slot=slot,
        stolen=stolen,
        pid=os.getpid(),
    )
    started = time.perf_counter()
    skipped = 0
    window_queries = 0
    index_candidates = 0
    with chunk_span:
        if _WORKER_KIND == "candidates":
            verdicts, window_queries, index_candidates = compare_candidate_span(
                _WORKER_GROUPS, comparator, _WORKER_INDEX, _WORKER_ORDER, span
            )
        else:
            verdicts, skipped = compare_span(
                _WORKER_GROUPS,
                comparator,
                span,
                prune_policy=config.prune_policy,
                flags=_WORKER_FLAGS,
                exchange_interval=config.exchange_interval,
            )
        if chunk_span.is_recording:
            chunk_span.set_attribute("verdicts", len(verdicts))
            chunk_span.set_attribute("comparisons", comparator.comparisons)
            chunk_span.set_attribute(
                "pairs_examined", comparator.pairs_examined
            )
            if skipped:
                chunk_span.set_attribute("pairs_skipped", skipped)
            if window_queries:
                chunk_span.set_attribute("window_queries", window_queries)
                chunk_span.set_attribute("index_candidates", index_candidates)
    outcome = ChunkOutcome(
        start=span[0],
        stop=span[1],
        verdicts=verdicts,
        comparisons=comparator.comparisons,
        pairs_examined=comparator.pairs_examined,
        bbox_shortcuts=comparator.bbox_shortcuts,
        stopping_rule_exits=comparator.stopping_rule_exits,
        pairs_skipped=skipped,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        window_queries=window_queries,
        index_candidates=index_candidates,
        slot=slot,
        stolen=stolen,
    )
    if chunk_span.is_recording:
        outcome.spans = [chunk_span.to_dict()]
    return outcome


def _steal_loop(slot: int) -> Tuple[List[ChunkOutcome], WorkerReport]:
    """Long-running task for one worker slot under the stealing scheduler.

    The slot drains its own chunk queue front-to-back, then steals small
    chunks from the tails of the most-loaded victims until the shared
    ledger is empty.  Returns the chunk outcomes plus the slot's
    scheduling telemetry.
    """
    assert _WORKER_LEDGER is not None and _WORKER_SPANS is not None
    report = WorkerReport(slot=slot, worker_pid=os.getpid())
    outcomes: List[ChunkOutcome] = []
    while True:
        idle_from = time.perf_counter()
        claim = _WORKER_LEDGER.claim(slot)
        report.idle_seconds += time.perf_counter() - idle_from
        if claim is None:
            break
        chunk_id, stolen = claim
        outcome = _run_chunk(tuple(_WORKER_SPANS[chunk_id]), slot, stolen)
        outcomes.append(outcome)
        report.chunks_done += 1
        if stolen:
            report.chunks_stolen += 1
        report.busy_seconds += outcome.elapsed_seconds
        report.chunk_seconds.append(outcome.elapsed_seconds)
    return outcomes, report


def _reports_from_outcomes(outcomes: List[ChunkOutcome]) -> List[WorkerReport]:
    """Synthesise per-process reports for static runs (no ledger)."""
    by_pid: Dict[int, WorkerReport] = {}
    for slot, outcome in enumerate(outcomes):
        report = by_pid.get(outcome.worker_pid)
        if report is None:
            report = WorkerReport(slot=len(by_pid), worker_pid=outcome.worker_pid)
            by_pid[outcome.worker_pid] = report
        report.chunks_done += 1
        report.busy_seconds += outcome.elapsed_seconds
        report.chunk_seconds.append(outcome.elapsed_seconds)
    return list(by_pid.values())


def _resolve_shm(shm: Optional[bool], start_method: str) -> bool:
    """Auto policy: shm on spawn-family platforms, inheritance under fork."""
    if shm is None:
        return start_method != "fork" and shm_available()
    return bool(shm) and shm_available()


def _timeout_error(
    pool_timeout: float, workers: int, chunks: int, scheduler: str
) -> PoolTimeoutError:
    return PoolTimeoutError(
        f"parallel skyline pool produced no result within"
        f" {pool_timeout:.0f}s ({workers} workers,"
        f" {chunks} chunks, scheduler={scheduler});"
        f" pool terminated"
    )


#: How often the parent samples pool progress while a ``progress``
#: callback is installed (seconds).
_PROGRESS_POLL_SECONDS = 0.2

#: How often the parent checks worker liveness while draining results —
#: the detection latency for a crashed worker is a few of these, seconds
#: at most, regardless of ``pool_timeout``.
_LIVENESS_POLL_SECONDS = 0.25


def _watch_workers(pool, known: Dict[int, Any]) -> List[Tuple[int, int]]:
    """Track the pool's worker processes; return newly dead ones.

    ``known`` accumulates every worker ``Process`` ever seen in
    ``pool._pool`` (the pool replaces dead workers, so the live list
    alone forgets casualties).  While results are outstanding no worker
    legitimately exits — the pool is neither closing nor recycling
    (``maxtasksperchild`` unset) — so *any* recorded exitcode means a
    crash (negative = killed by a signal, e.g. the OOM killer).
    """
    dead: List[Tuple[int, int]] = []
    for proc in list(getattr(pool, "_pool", ())):
        if proc.pid is not None:
            known.setdefault(proc.pid, proc)
    for pid, proc in list(known.items()):
        exitcode = proc.exitcode
        if exitcode is not None:
            dead.append((pid, exitcode))
            del known[pid]
    return dead


def _collect_results(
    pool,
    task_fn: Callable,
    tasks: Sequence,
    pool_timeout: float,
    *,
    scheduler: str,
    workers: int,
    total_chunks: int,
    attempt_chunks: int,
    claimed,
    progress: Optional[Callable[[int, int], None]],
    done_offset: int = 0,
) -> List:
    """Drain the pool, polling worker liveness between deliveries.

    Results stream back through ``imap_unordered`` (the caller restores
    deterministic chunk order afterwards); between deliveries the parent
    wakes every :data:`_LIVENESS_POLL_SECONDS` to check the worker
    processes and, when a ``progress`` callback is installed, report
    ``(chunks_done, chunks_total)`` — under the stealing scheduler from
    the shared claim table (claims lead completion by at most one
    in-flight chunk per worker), under the static scheduler from the
    completion count.

    Failure modes: a dead worker raises :class:`_AttemptFailure` (with
    the partial results and the casualty list) within a poll tick or
    two; a chunk that raised in a surviving worker arrives as its
    exception and is wrapped the same way; total silence past
    ``pool_timeout`` raises :class:`PoolTimeoutError`.
    """
    deadline = time.monotonic() + pool_timeout
    poll = _LIVENESS_POLL_SECONDS
    if progress is not None:
        poll = min(poll, _PROGRESS_POLL_SECONDS)
    iterator = pool.imap_unordered(task_fn, tasks, chunksize=1)
    results: List = []
    known: Dict[int, Any] = {}
    _watch_workers(pool, known)  # snapshot the initial worker set
    last_liveness = time.monotonic()

    def _check_liveness() -> None:
        dead = _watch_workers(pool, known)
        if dead:
            raise _AttemptFailure(results, dead, None) from None

    def _report(done_now: int) -> None:
        if progress is None:
            return
        if scheduler == "stealing" and claimed is not None:
            done_now = min(int(sum(claimed)), attempt_chunks)
        progress(min(done_offset + done_now, total_chunks), total_chunks)

    while len(results) < len(tasks):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise _timeout_error(
                pool_timeout, workers, total_chunks, scheduler
            ) from None
        try:
            results.append(iterator.next(timeout=min(poll, remaining)))
        except mp.TimeoutError:
            last_liveness = time.monotonic()
            _check_liveness()
            _report(len(results))
            continue
        except Exception as exc:
            # A chunk raised inside a surviving worker and the traceback
            # travelled back through the pool; the rest of the attempt's
            # chunks are unaccounted for — same recovery as a crash.
            raise _AttemptFailure(results, [], exc) from exc
        if time.monotonic() - last_liveness >= _LIVENESS_POLL_SECONDS:
            # Results streaming from surviving workers must not starve
            # crash detection — a casualty still surfaces within a tick.
            last_liveness = time.monotonic()
            _check_liveness()
        _report(len(results))
    return results


def _normalize_results(results: List, scheduler: str):
    """Flatten attempt results to ``(outcomes, reports)``.

    Static results are already :class:`ChunkOutcome`\\ s (reports are
    synthesised at the end of the run); stealing results are one
    ``(outcomes, report)`` pair per worker slot.
    """
    if scheduler != "stealing":
        return list(results), []
    outcomes: List[ChunkOutcome] = []
    reports: List[WorkerReport] = []
    for slot_outcomes, report in results:
        outcomes.extend(slot_outcomes)
        reports.append(report)
    return outcomes, reports


def _pool_counter(name: str, help: str):
    """Fault-tolerance counter, labelled by scheduler and kernel kind."""
    return obs_metrics.get_registry().counter(name, help, ("scheduler", "kind"))


def _crash_error(
    dead: List[Tuple[int, int]],
    lost_spans: Sequence[Tuple[int, int]],
    workers: int,
    scheduler: str,
) -> WorkerCrashError:
    pids = [pid for pid, _ in dead]
    codes = [code for _, code in dead]
    detail = ", ".join(
        f"pid {pid} ({_signal_name(code) or f'exit {code}'})"
        for pid, code in dead
    )
    return WorkerCrashError(
        f"pool worker crashed mid-run: {detail};"
        f" {len(lost_spans)} chunk(s) undelivered"
        f" ({workers} workers, scheduler={scheduler})",
        pids=pids,
        exitcodes=codes,
        lost_spans=lost_spans,
    )


def execute_span_inline(
    groups, comparator, config: WorkerConfig, kind, index, order, flags, span
) -> ChunkOutcome:
    """Run one chunk on the parent's serial engine (retry/fallback path).

    Same kernel, same deterministic span, a fresh comparator reset per
    chunk — the resulting :class:`ChunkOutcome` (verdicts *and* work
    counters) is bit-identical to what a pool worker would have returned,
    so the merge and ``AlgorithmStats`` reconciliation are unaffected by
    where the chunk actually ran.  Besides the retry layer here, the
    persistent engine (:mod:`repro.engine`) uses this as its last-resort
    fallback when every worker slot has exhausted its respawn budget.
    """
    comparator.reset_stats()
    started = time.perf_counter()
    skipped = 0
    window_queries = 0
    index_candidates = 0
    if kind == "candidates":
        verdicts, window_queries, index_candidates = compare_candidate_span(
            groups, comparator, index, order, span
        )
    else:
        verdicts, skipped = compare_span(
            groups,
            comparator,
            span,
            prune_policy=config.prune_policy,
            flags=flags,
            exchange_interval=config.exchange_interval,
        )
    return ChunkOutcome(
        start=span[0],
        stop=span[1],
        verdicts=verdicts,
        comparisons=comparator.comparisons,
        pairs_examined=comparator.pairs_examined,
        bbox_shortcuts=comparator.bbox_shortcuts,
        stopping_rule_exits=comparator.stopping_rule_exits,
        pairs_skipped=skipped,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        window_queries=window_queries,
        index_candidates=index_candidates,
    )


def _pool_attempt(
    ctx,
    base: dict,
    spans_part: List[Tuple[int, int]],
    workers: int,
    *,
    scheduler: str,
    pool_timeout: float,
    progress,
    done_offset: int,
    total_chunks: int,
    owners,
    attempt: int,
    run_fields: dict,
):
    """One pool lifecycle over ``spans_part``: create, drain, tear down.

    Emits the paired run-log lifecycle events: every ``pool_start`` is
    closed by exactly one of ``pool_end`` (success), ``pool_timeout``, or
    — for any other failure, including crashes, worker tracebacks and
    ``KeyboardInterrupt`` — a ``pool_error`` recorded by this function or
    by :func:`run_spans`'s failure handling.  Teardown discipline: a
    clean attempt uses ``close()`` + ``join()`` so workers run their own
    teardown (shm handle close, ``atexit`` hooks, coverage flushes under
    spawn); ``terminate()`` is reserved for the failure paths.
    """
    payload = _PoolPayload(trace=obs_tracing.current_trace_context(), **base)
    if scheduler == "stealing":
        if owners is None:
            owners = assign_owners(len(spans_part), workers)
        payload.spans = tuple((int(a), int(b)) for a, b in spans_part)
        payload.owners = tuple(tuple(queue) for queue in owners)
        payload.claimed = sharedctypes.RawArray("B", len(spans_part))
        payload.lock = ctx.Lock()
        tasks: Sequence = list(range(workers))
        task_fn: Callable = _steal_loop
    else:
        tasks = list(spans_part)
        task_fn = _run_chunk
    pool = ctx.Pool(
        processes=workers, initializer=_init_pool, initargs=(payload,)
    )
    obs_runlog.emit(
        "pool_start",
        workers=workers,
        scheduler=scheduler,
        chunks=len(spans_part),
        attempt=attempt,
        **run_fields,
    )
    pool_started = time.perf_counter()
    try:
        results = _collect_results(
            pool,
            task_fn,
            tasks,
            pool_timeout,
            scheduler=scheduler,
            workers=workers,
            total_chunks=total_chunks,
            attempt_chunks=len(spans_part),
            claimed=payload.claimed,
            progress=progress,
            done_offset=done_offset,
        )
    except PoolTimeoutError:
        pool.terminate()
        pool.join()
        obs_runlog.emit(
            "pool_timeout",
            workers=workers,
            scheduler=scheduler,
            chunks=len(spans_part),
            timeout_seconds=pool_timeout,
            attempt=attempt,
        )
        raise
    except _AttemptFailure:
        pool.terminate()
        pool.join()
        raise  # run_spans emits the pool_error with full context
    except BaseException as exc:
        # Anything else escaping the drain loop — KeyboardInterrupt
        # included — must not leave a dangling pool_start in the log.
        pool.terminate()
        pool.join()
        obs_runlog.emit_error(
            "pool_error",
            exc,
            workers=workers,
            scheduler=scheduler,
            chunks=len(spans_part),
            attempt=attempt,
        )
        raise
    pool.close()
    pool.join()
    obs_runlog.emit(
        "pool_end",
        workers=workers,
        scheduler=scheduler,
        chunks=len(spans_part),
        elapsed_seconds=time.perf_counter() - pool_started,
        attempt=attempt,
    )
    return _normalize_results(results, scheduler)


def run_spans(
    groups: Sequence[Group],
    config: WorkerConfig,
    spans: Sequence[Tuple[int, int]],
    workers: int,
    *,
    pool_timeout: float = 300.0,
    scheduler: str = "static",
    shm: Optional[bool] = None,
    kind: str = "pairs",
    index=None,
    order: Optional[Sequence[int]] = None,
    owners: Optional[Sequence[Sequence[int]]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    on_failure: str = "raise",
    faults: Optional[FaultSpec] = None,
) -> PoolRun:
    """Run ``spans`` on a pool under the chosen scheduler and shipping mode.

    The general entry point behind both ``PAR`` and the parallel IN/LO
    path.  ``kind="pairs"`` interprets spans as linear pair-index ranges
    (:func:`compare_span`); ``kind="candidates"`` as slabs of positions
    into ``order`` (:func:`compare_candidate_span`, requires ``index`` —
    a :class:`~repro.index.rtree.FlatRTree` — and ``order``).

    ``scheduler="static"`` streams the spans through the pool one chunk
    per task; ``"stealing"`` ships the whole span list plus a shared
    claim table and runs one :func:`_steal_loop` per worker slot
    (``owners`` may pre-assign chunk queues; defaults to round-robin).

    ``shm=None`` auto-selects shared-memory shipping on spawn platforms.
    A wedged pool raises :class:`PoolTimeoutError` after ``pool_timeout``
    seconds in every mode.

    Fault tolerance: worker liveness is polled while draining, so a dead
    worker surfaces within seconds as :class:`WorkerCrashError` instead
    of hanging to ``pool_timeout``.  ``on_failure`` decides what happens
    to a crash or a worker traceback: ``"raise"`` (default) fails fast;
    ``"retry"`` re-executes only the undelivered chunks on a fresh pool,
    up to ``max_retries`` times with exponential backoff starting at
    ``retry_backoff`` seconds, then raises; ``"serial"`` is ``"retry"``
    plus a final inline re-run of whatever is still missing on the
    parent's serial engine, so the run completes regardless.  Retried and
    fallback chunks are the same deterministic spans through the same
    kernel, so a recovered run's results and counters are bit-identical
    to an undisturbed one.  ``faults`` (or ``$REPRO_FAULTS``) injects
    worker failures for tests and demos — see :mod:`repro.parallel.faults`.

    ``progress`` is called periodically with ``(chunks_done,
    chunks_total)`` while the pool runs (see :func:`_collect_results`).
    When the caller has tracing enabled and a span open, its
    :class:`~repro.obs.tracing.TraceContext` is shipped to the workers so
    their per-chunk spans come back in :attr:`ChunkOutcome.spans`; pool
    lifecycle (``pool_start`` / ``pool_end`` / ``pool_timeout`` /
    ``pool_error`` / ``chunk_retry`` / ``pool_fallback``) goes to the
    structured run log.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if kind not in ("pairs", "candidates"):
        raise ValueError(f"kind must be 'pairs' or 'candidates', got {kind!r}")
    if kind == "candidates" and (index is None or order is None):
        raise ValueError("kind='candidates' requires index and order")
    if scheduler not in ("static", "stealing"):
        raise ValueError(
            f"scheduler must be 'static' or 'stealing', got {scheduler!r}"
        )
    if on_failure not in ON_FAILURE_POLICIES:
        raise ValueError(
            f"on_failure must be one of {ON_FAILURE_POLICIES}, got {on_failure!r}"
        )
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if retry_backoff < 0:
        raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
    if not spans:
        return PoolRun()
    start_method = preferred_start_method()
    ctx = mp.get_context(start_method)
    use_shm = _resolve_shm(shm, start_method)
    if faults is None:
        faults = FaultSpec.from_env()
    fault_state = ctx.Value("i", 0) if faults is not None else None
    flags = (
        sharedctypes.RawArray("B", len(groups))
        if kind == "pairs" and config.exchange_interval > 0
        else None
    )
    arena = ShmArena() if use_shm else None
    tracer = obs_tracing.get_tracer()
    labels = {"scheduler": scheduler, "kind": kind}
    try:
        shipment = ship_groups(groups, arena)
        index_arrays = None
        if index is not None:
            index_arrays = ship_arrays(index.arrays(), arena)
        base = dict(
            shipment=shipment,
            config=config,
            kind=kind,
            flags=flags,
            index_arrays=index_arrays,
            order=tuple(order) if order is not None else None,
            faults=faults,
            fault_state=fault_state,
        )
        run_fields = dict(
            start_method=start_method, kind=kind, shm=bool(use_shm)
        )
        all_spans = [(int(a), int(b)) for a, b in spans]
        remaining: List[Tuple[int, int]] = list(all_spans)
        outcomes: List[ChunkOutcome] = []
        reports: List[WorkerReport] = []
        attempt = 0
        while remaining:
            attempt_kwargs = dict(
                scheduler=scheduler,
                pool_timeout=pool_timeout,
                progress=progress,
                done_offset=len(outcomes),
                total_chunks=len(all_spans),
                owners=owners if attempt == 0 else None,
                attempt=attempt,
                run_fields=run_fields,
            )
            try:
                if attempt:
                    with tracer.span(
                        "parallel.retry", attempt=attempt, chunks=len(remaining)
                    ):
                        part_outcomes, part_reports = _pool_attempt(
                            ctx, base, remaining, workers, **attempt_kwargs
                        )
                else:
                    part_outcomes, part_reports = _pool_attempt(
                        ctx, base, remaining, workers, **attempt_kwargs
                    )
            except _AttemptFailure as failure:
                part_outcomes, part_reports = _normalize_results(
                    failure.partial, scheduler
                )
                outcomes.extend(part_outcomes)
                reports.extend(part_reports)
                done = {(o.start, o.stop) for o in outcomes}
                remaining = [s for s in remaining if s not in done]
                crash = _crash_error(failure.dead, remaining, workers, scheduler)
                error: BaseException = (
                    crash if failure.dead else failure.cause
                )
                obs_runlog.emit(
                    "pool_error",
                    error=type(error).__name__,
                    message=str(error),
                    workers=workers,
                    scheduler=scheduler,
                    kind=kind,
                    attempt=attempt,
                    crashed_pids=list(crash.pids),
                    signals=[s for s in crash.signals if s],
                    lost_chunks=len(remaining),
                )
                if failure.dead:
                    _pool_counter(
                        "worker_crashes_total",
                        "Pool worker processes that died mid-run",
                    ).inc(len(failure.dead), **labels)
                if on_failure == "raise":
                    raise error
                if attempt < max_retries:
                    attempt += 1
                    delay = retry_backoff * (2 ** (attempt - 1))
                    obs_runlog.emit(
                        "chunk_retry",
                        attempt=attempt,
                        max_retries=max_retries,
                        chunks=len(remaining),
                        backoff_seconds=delay,
                        scheduler=scheduler,
                        kind=kind,
                    )
                    _pool_counter(
                        "chunk_retries_total",
                        "Chunks re-executed after a pool failure",
                    ).inc(len(remaining), **labels)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if on_failure == "serial":
                    obs_runlog.emit(
                        "pool_fallback",
                        chunks=len(remaining),
                        attempts=attempt + 1,
                        scheduler=scheduler,
                        kind=kind,
                    )
                    _pool_counter(
                        "pool_fallbacks_total",
                        "Pooled runs finished on the parent's serial engine",
                    ).inc(1, **labels)
                    with tracer.span(
                        "parallel.serial_fallback", chunks=len(remaining)
                    ):
                        comparator = comparator_for(config)
                        for lost in remaining:
                            outcomes.append(
                                execute_span_inline(
                                    groups, comparator, config, kind,
                                    index, order, flags, lost,
                                )
                            )
                    if progress is not None:
                        progress(len(all_spans), len(all_spans))
                    remaining = []
                    continue
                raise error from failure.cause
            else:
                outcomes.extend(part_outcomes)
                reports.extend(part_reports)
                remaining = []
    finally:
        if arena is not None:
            arena.close()
    # Deterministic merge order regardless of scheduler, steal order,
    # delivery order and which attempt (or the fallback) ran each chunk.
    outcomes.sort(key=lambda outcome: (outcome.start, outcome.stop))
    if reports:
        reports.sort(key=lambda report: (report.slot, report.worker_pid))
    else:
        reports = _reports_from_outcomes(outcomes)
    return PoolRun(outcomes=outcomes, reports=reports)


def execute_chunks(
    groups: Sequence[Group],
    config: WorkerConfig,
    spans: Sequence[Tuple[int, int]],
    workers: int,
    pool_timeout: float = 300.0,
    **run_kwargs,
) -> List[ChunkOutcome]:
    """Run ``spans`` over a ``workers``-sized process pool; ordered results.

    The PR-2 entry point, kept as a thin wrapper over :func:`run_spans`
    with the static scheduler and automatic shipping (extra keyword
    arguments — ``on_failure``, ``max_retries``, ``faults``, ... — pass
    straight through).  The dataset travels to the pool exactly once;
    afterwards only tiny span tuples and compact verdict lists cross the
    process boundary.  A deadlocked or wedged pool raises
    :class:`PoolTimeoutError` after ``pool_timeout`` seconds instead of
    hanging the caller (and CI) forever; a dead worker surfaces within
    seconds as :class:`WorkerCrashError`.
    """
    run = run_spans(
        groups,
        config,
        spans,
        workers,
        pool_timeout=pool_timeout,
        scheduler="static",
        **run_kwargs,
    )
    return run.outcomes


def map_tasks(
    task_fn: Callable,
    items: Sequence,
    workers: int,
    pool_timeout: float = 300.0,
) -> List:
    """Map picklable ``items`` over a pool with the shared failure mode.

    Generic helper for coarse-grained fan-out (the partitioned baseline's
    local phase): same start-method resolution, the same
    :class:`PoolTimeoutError` fail-fast as the chunk executor, and the
    same liveness poll — a dead worker raises :class:`WorkerCrashError`
    within seconds instead of hanging to ``pool_timeout``.  (No chunk
    retry here: items are opaque, so the caller owns re-execution.)
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    items = list(items)
    if not items:
        return []
    ctx = mp.get_context(preferred_start_method())
    pool = ctx.Pool(processes=workers)
    try:
        pending = pool.map_async(task_fn, items, chunksize=1)
        deadline = time.monotonic() + pool_timeout
        known: Dict[int, Any] = {}
        _watch_workers(pool, known)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PoolTimeoutError(
                    f"worker pool produced no result within {pool_timeout:.0f}s"
                    f" ({workers} workers, {len(items)} tasks); pool terminated"
                ) from None
            try:
                results = pending.get(
                    timeout=min(_LIVENESS_POLL_SECONDS, remaining)
                )
            except mp.TimeoutError:
                dead = _watch_workers(pool, known)
                if dead:
                    raise _crash_error(
                        dead, (), workers, "static"
                    ) from None
                continue
            break
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    # Clean teardown: let workers run their exit hooks (see run_spans).
    pool.close()
    pool.join()
    return results
