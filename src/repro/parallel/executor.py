"""Process-pool execution of group-pair comparison chunks.

This is the machinery behind ``PAR``
(:class:`repro.core.algorithms.parallel.ParallelSkylineAlgorithm`): the
upper-triangular group-pair matrix is cut into contiguous linear-index
chunks (:mod:`repro.parallel.partition`), each chunk is compared by a pool
worker with its own :class:`~repro.core.comparator.GroupComparator`, and the
parent merges the compact verdict lists plus the per-chunk work counters.

Shipping the data once
----------------------
Group ndarrays are **never pickled per task**.  The pool is created with an
initializer that receives the full group list once:

* under the ``fork`` start method (Linux default) the worker inherits the
  parent's memory copy-on-write — zero serialization;
* under ``spawn`` the initializer arguments are pickled **once per worker**
  at pool start-up.

Tasks submitted afterwards are just ``(start, stop)`` linear-index ranges,
and results are compact ``(i, j, verdict-bits)`` triples for the (typically
sparse) pairs where some dominance verdict fired.

Pruning exchange
----------------
With ``exchange_interval > 0`` the workers additionally share a byte per
group (bit 0 = dominated, bit 1 = strongly dominated) in a lock-free
``RawArray``.  Every ``exchange_interval`` pairs a worker refreshes its
local snapshot and skips work the rest of the pool has already made
redundant:

* ``prune_policy="paper"`` — pairs with a *strongly* dominated endpoint are
  skipped entirely (the serial Algorithm-3 rule; the result carries the same
  superset-of-Definition-2 guarantee as serial ``TR``);
* ``prune_policy="safe"`` — only comparison *directions* that can no longer
  change any verdict are dropped, so the result stays exactly the
  Definition-2 skyline regardless of scheduling.

Flag writes are monotonic 0->1, so the unlocked read-modify-write races are
benign: a lost update can only cost a pruning opportunity, never
correctness — the authoritative verdicts always travel back to the parent
in the chunk results.  With ``exchange_interval == 0`` (the default) every
pair is compared exactly once in full, which makes the run — results *and*
work counters — bit-identical to serial ``NL`` for any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from multiprocessing import sharedctypes
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.comparator import GroupComparator
from ..core.gamma import GammaThresholds
from ..core.groups import Group
from ..obs import runlog as obs_runlog
from ..obs import tracing as obs_tracing
from ..obs.tracing import TraceContext, Tracer
from .partition import iter_pairs
from .scheduler import ChunkLedger, WorkerReport
from .shm import (
    GroupShipment,
    ShmArena,
    load_arrays,
    load_groups,
    ship_arrays,
    ship_groups,
    shm_available,
)

__all__ = [
    "D12",
    "D12_STRONG",
    "D21",
    "D21_STRONG",
    "WorkerConfig",
    "ChunkOutcome",
    "PoolRun",
    "resolve_workers",
    "preferred_start_method",
    "compare_span",
    "compare_candidate_span",
    "apply_verdicts",
    "execute_chunks",
    "run_spans",
    "map_tasks",
    "PoolTimeoutError",
]

#: Verdict bit flags packed into one int per pair (forward = g_i over g_j).
D12, D12_STRONG, D21, D21_STRONG = 1, 2, 4, 8

#: Flag-byte bits of the shared pruning-exchange array.
_FLAG_DOMINATED, _FLAG_STRONG = 1, 2

#: Environment variable consulted when ``workers`` is not given explicitly.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable forcing a multiprocessing start method (``fork`` /
#: ``spawn`` / ``forkserver``).  CI uses ``REPRO_START_METHOD=spawn`` to
#: exercise the shared-memory shipping path on Linux.
START_METHOD_ENV_VAR = "REPRO_START_METHOD"


class PoolTimeoutError(RuntimeError):
    """The worker pool failed to deliver results within ``pool_timeout``."""


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``$REPRO_WORKERS``,
    else ``min(4, cpu_count)``."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            workers = int(env)
        else:
            workers = min(4, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def preferred_start_method() -> str:
    """Start method for the pool: ``$REPRO_START_METHOD`` override, else
    ``fork`` when the platform offers it (zero-copy data shipping)."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip().lower()
    if env:
        available = mp.get_all_start_methods()
        if env not in available:
            raise ValueError(
                f"{START_METHOD_ENV_VAR}={env!r} is not available on this"
                f" platform (choices: {available})"
            )
        return env
    return "fork" if "fork" in mp.get_all_start_methods() else \
        mp.get_start_method(allow_none=False)


@dataclass(frozen=True)
class WorkerConfig:
    """Comparator + policy configuration shipped to each worker once."""

    gamma: object  # GammaLike; Fractions/floats pickle fine
    use_stopping_rule: bool = True
    use_bbox: bool = False
    block_size: int = 1024
    prune_policy: str = "paper"
    exchange_interval: int = 0


@dataclass
class ChunkOutcome:
    """What one chunk sent back: verdicts + the worker's work counters."""

    start: int
    stop: int
    verdicts: List[Tuple[int, int, int]] = field(default_factory=list)
    comparisons: int = 0
    pairs_examined: int = 0
    bbox_shortcuts: int = 0
    stopping_rule_exits: int = 0
    pairs_skipped: int = 0
    elapsed_seconds: float = 0.0
    worker_pid: int = 0
    # candidate-slab runs (parallel IN/LO) additionally report the index
    # counters; stealing runs tag where the chunk actually executed.
    window_queries: int = 0
    index_candidates: int = 0
    slot: int = -1
    stolen: bool = False
    # finished worker-side span trees (Span.to_dict form), grafted back
    # onto the parent trace when tracing is enabled; empty otherwise.
    spans: List[dict] = field(default_factory=list)


def _encode(outcome) -> int:
    code = 0
    if outcome.d12:
        code |= D12
    if outcome.d12_strong:
        code |= D12_STRONG
    if outcome.d21:
        code |= D21
    if outcome.d21_strong:
        code |= D21_STRONG
    return code


def apply_verdicts(state, verdicts: Sequence[Tuple[int, int, int]]) -> None:
    """Apply packed pair verdicts to a group-state (NL merge semantics)."""
    for i, j, code in verdicts:
        if code & D12_STRONG:
            state.mark_strong(j)
        elif code & D12:
            state.mark_dominated(j)
        if code & D21_STRONG:
            state.mark_strong(i)
        elif code & D21:
            state.mark_dominated(i)


def compare_span(
    groups: Sequence[Group],
    comparator: GroupComparator,
    span: Tuple[int, int],
    *,
    prune_policy: str = "paper",
    flags=None,
    exchange_interval: int = 0,
) -> Tuple[List[Tuple[int, int, int]], int]:
    """Compare every pair in ``span`` (linear indices); the chunk kernel.

    Returns ``(verdicts, pairs_skipped)`` where ``verdicts`` holds only the
    pairs for which some dominance predicate fired.  ``flags`` (any
    byte-indexable, byte-assignable buffer — a shared ``RawArray`` in pool
    workers, a plain ``bytearray`` inline) enables the pruning exchange; the
    kernel refreshes its snapshot of it every ``exchange_interval`` pairs.
    """
    start, stop = span
    n = len(groups)
    verdicts: List[Tuple[int, int, int]] = []
    skipped = 0
    exchanging = flags is not None and exchange_interval > 0
    local = bytes(flags) if exchanging else b""
    since_refresh = 0
    for i, j in iter_pairs(start, stop, n):
        if exchanging:
            if since_refresh >= exchange_interval:
                local = bytes(flags)
                since_refresh = 0
            since_refresh += 1
            if prune_policy == "paper":
                if (local[i] | local[j]) & _FLAG_STRONG:
                    skipped += 1
                    continue
                need_forward = need_backward = True
            else:
                need_forward = not local[j] & _FLAG_DOMINATED
                need_backward = not local[i] & _FLAG_DOMINATED
                if not (need_forward or need_backward):
                    skipped += 1
                    continue
            outcome = comparator.compare(
                groups[i],
                groups[j],
                need_forward=need_forward,
                need_backward=need_backward,
            )
        else:
            outcome = comparator.compare(groups[i], groups[j])
        code = _encode(outcome)
        if not code:
            continue
        verdicts.append((i, j, code))
        if exchanging:
            # Publish monotonic marks (benign unlocked read-modify-write:
            # a lost bit only costs pruning, never correctness).
            if code & D12_STRONG:
                flags[j] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D12:
                flags[j] |= _FLAG_DOMINATED
            if code & D21_STRONG:
                flags[i] |= _FLAG_DOMINATED | _FLAG_STRONG
            elif code & D21:
                flags[i] |= _FLAG_DOMINATED
    return verdicts, skipped


def compare_candidate_span(
    groups: Sequence[Group],
    comparator: GroupComparator,
    index,
    order: Sequence[int],
    span: Tuple[int, int],
) -> Tuple[List[Tuple[int, int, int]], int, int]:
    """The parallel IN/LO chunk kernel: one slab of candidate groups.

    For every candidate position in ``span`` (indices into ``order``), run
    the Algorithm-5 window query against the read-only ``index`` and probe
    the returned groups *backward only* — does anyone γ-dominate the
    candidate?  The loop breaks at the first dominator.

    This is the *independent-candidate* discipline: each group's verdict
    is a pure function of its own window loop (whose candidate order the
    flat index fixes deterministically), never of marks produced by other
    candidates.  The window is a superset of the candidate's dominators
    (``g2 ⊳ g1`` implies ``g2.max ∈ [g1.min, +inf)``), so the result is
    exactly the Definition-2 skyline — and both the verdicts *and every
    work counter* are invariant under any partitioning of the candidates
    across chunks, workers and steal orders.

    Returns ``(verdicts, window_queries, index_candidates)`` where the
    verdicts are ``(i, i, D21|D21_STRONG)`` self-marks.
    """
    start, stop = span
    upper = np.full(groups[0].dimensions, np.inf)
    verdicts: List[Tuple[int, int, int]] = []
    window_queries = 0
    index_candidates = 0
    for position in range(start, stop):
        i = order[position]
        g1 = groups[i]
        candidates = index.search_window(g1.bbox.min_corner, upper)
        window_queries += 1
        index_candidates += len(candidates)
        for j in candidates:
            if j == i:
                continue
            outcome = comparator.compare(
                g1, groups[j], need_forward=False, need_backward=True
            )
            if outcome.d21_strong:
                verdicts.append((i, i, D21_STRONG))
                break
            if outcome.d21:
                verdicts.append((i, i, D21))
                break
    return verdicts, window_queries, index_candidates


@dataclass
class PoolRun:
    """Everything a pooled run sent back: chunk results + scheduling telemetry."""

    outcomes: List[ChunkOutcome] = field(default_factory=list)
    reports: List[WorkerReport] = field(default_factory=list)


@dataclass
class _PoolPayload:
    """Initializer argument: the one-shot shipment to every worker."""

    shipment: GroupShipment
    config: WorkerConfig
    kind: str = "pairs"  # "pairs" | "candidates"
    flags: Any = None
    index_arrays: Optional[Dict[str, Any]] = None
    order: Optional[Tuple[int, ...]] = None
    spans: Optional[Tuple[Tuple[int, int], ...]] = None
    owners: Optional[Tuple[Tuple[int, ...], ...]] = None
    claimed: Any = None
    lock: Any = None
    trace: Optional[TraceContext] = None


# ----------------------------------------------------------------------
# pool plumbing: per-worker globals set once by the initializer
# ----------------------------------------------------------------------

_WORKER_GROUPS: Optional[Sequence[Group]] = None
_WORKER_COMPARATOR: Optional[GroupComparator] = None
_WORKER_CONFIG: Optional[WorkerConfig] = None
_WORKER_FLAGS = None
_WORKER_KIND: str = "pairs"
_WORKER_INDEX = None
_WORKER_ORDER: Optional[Sequence[int]] = None
_WORKER_SPANS: Optional[Sequence[Tuple[int, int]]] = None
_WORKER_LEDGER: Optional[ChunkLedger] = None


def _init_worker(groups, config: WorkerConfig, flags) -> None:
    """Pool initializer (legacy shape): inline dataset, pair kernel."""
    _init_pool(_PoolPayload(shipment=GroupShipment(inline=list(groups)),
                            config=config, flags=flags))


def _init_pool(payload: _PoolPayload) -> None:
    """Pool initializer: materialise the one-shot shipment into globals."""
    global _WORKER_GROUPS, _WORKER_COMPARATOR, _WORKER_CONFIG, _WORKER_FLAGS
    global _WORKER_KIND, _WORKER_INDEX, _WORKER_ORDER, _WORKER_SPANS
    global _WORKER_LEDGER
    config = payload.config
    _WORKER_GROUPS = load_groups(payload.shipment)
    _WORKER_CONFIG = config
    _WORKER_FLAGS = payload.flags
    _WORKER_KIND = payload.kind
    _WORKER_ORDER = payload.order
    _WORKER_SPANS = payload.spans
    _WORKER_INDEX = None
    if payload.index_arrays is not None:
        from ..index.rtree import FlatRTree

        _WORKER_INDEX = FlatRTree.from_arrays(load_arrays(payload.index_arrays))
    _WORKER_LEDGER = None
    if payload.owners is not None:
        _WORKER_LEDGER = ChunkLedger(
            payload.owners, payload.claimed, payload.lock
        )
    _WORKER_COMPARATOR = GroupComparator(
        GammaThresholds(config.gamma),
        use_stopping_rule=config.use_stopping_rule,
        use_bbox=config.use_bbox,
        block_size=config.block_size,
    )
    # Observability hand-off.  A fork-started worker inherits the parent's
    # tracer and run-log handle; recording into either from here would
    # corrupt parent state (duplicate sink emits, interleaved writes).
    # Each worker therefore gets its own tracer parented on the shipped
    # TraceContext — or the no-op tracer when the parent wasn't tracing —
    # and a silenced run log (pool lifecycle is the parent's to record).
    if payload.trace is not None:
        obs_tracing.set_tracer(Tracer(context=payload.trace))
    else:
        obs_tracing.set_tracer(obs_tracing.NOOP_TRACER)
    obs_runlog.set_runlog(obs_runlog.NOOP_RUNLOG)


def _run_chunk(
    span: Tuple[int, int], slot: int = -1, stolen: bool = False
) -> ChunkOutcome:
    """Task body executed in a pool worker: one chunk, counters reset.

    When the worker tracer records (the parent shipped a
    :class:`~repro.obs.tracing.TraceContext`), the chunk runs inside a
    ``parallel.chunk`` span carrying the span bounds, the kernel kind and
    the scheduling telemetry (slot / stolen / pid); its serialized form
    travels back in :attr:`ChunkOutcome.spans` for the parent to graft
    onto its own tree.
    """
    assert _WORKER_GROUPS is not None and _WORKER_COMPARATOR is not None
    config = _WORKER_CONFIG
    comparator = _WORKER_COMPARATOR
    comparator.reset_stats()
    chunk_span = obs_tracing.get_tracer().span(
        "parallel.chunk",
        start=span[0],
        stop=span[1],
        kind=_WORKER_KIND,
        slot=slot,
        stolen=stolen,
        pid=os.getpid(),
    )
    started = time.perf_counter()
    skipped = 0
    window_queries = 0
    index_candidates = 0
    with chunk_span:
        if _WORKER_KIND == "candidates":
            verdicts, window_queries, index_candidates = compare_candidate_span(
                _WORKER_GROUPS, comparator, _WORKER_INDEX, _WORKER_ORDER, span
            )
        else:
            verdicts, skipped = compare_span(
                _WORKER_GROUPS,
                comparator,
                span,
                prune_policy=config.prune_policy,
                flags=_WORKER_FLAGS,
                exchange_interval=config.exchange_interval,
            )
        if chunk_span.is_recording:
            chunk_span.set_attribute("verdicts", len(verdicts))
            chunk_span.set_attribute("comparisons", comparator.comparisons)
            chunk_span.set_attribute(
                "pairs_examined", comparator.pairs_examined
            )
            if skipped:
                chunk_span.set_attribute("pairs_skipped", skipped)
            if window_queries:
                chunk_span.set_attribute("window_queries", window_queries)
                chunk_span.set_attribute("index_candidates", index_candidates)
    outcome = ChunkOutcome(
        start=span[0],
        stop=span[1],
        verdicts=verdicts,
        comparisons=comparator.comparisons,
        pairs_examined=comparator.pairs_examined,
        bbox_shortcuts=comparator.bbox_shortcuts,
        stopping_rule_exits=comparator.stopping_rule_exits,
        pairs_skipped=skipped,
        elapsed_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
        window_queries=window_queries,
        index_candidates=index_candidates,
        slot=slot,
        stolen=stolen,
    )
    if chunk_span.is_recording:
        outcome.spans = [chunk_span.to_dict()]
    return outcome


def _steal_loop(slot: int) -> Tuple[List[ChunkOutcome], WorkerReport]:
    """Long-running task for one worker slot under the stealing scheduler.

    The slot drains its own chunk queue front-to-back, then steals small
    chunks from the tails of the most-loaded victims until the shared
    ledger is empty.  Returns the chunk outcomes plus the slot's
    scheduling telemetry.
    """
    assert _WORKER_LEDGER is not None and _WORKER_SPANS is not None
    report = WorkerReport(slot=slot, worker_pid=os.getpid())
    outcomes: List[ChunkOutcome] = []
    while True:
        idle_from = time.perf_counter()
        claim = _WORKER_LEDGER.claim(slot)
        report.idle_seconds += time.perf_counter() - idle_from
        if claim is None:
            break
        chunk_id, stolen = claim
        outcome = _run_chunk(tuple(_WORKER_SPANS[chunk_id]), slot, stolen)
        outcomes.append(outcome)
        report.chunks_done += 1
        if stolen:
            report.chunks_stolen += 1
        report.busy_seconds += outcome.elapsed_seconds
        report.chunk_seconds.append(outcome.elapsed_seconds)
    return outcomes, report


def _reports_from_outcomes(outcomes: List[ChunkOutcome]) -> List[WorkerReport]:
    """Synthesise per-process reports for static runs (no ledger)."""
    by_pid: Dict[int, WorkerReport] = {}
    for slot, outcome in enumerate(outcomes):
        report = by_pid.get(outcome.worker_pid)
        if report is None:
            report = WorkerReport(slot=len(by_pid), worker_pid=outcome.worker_pid)
            by_pid[outcome.worker_pid] = report
        report.chunks_done += 1
        report.busy_seconds += outcome.elapsed_seconds
        report.chunk_seconds.append(outcome.elapsed_seconds)
    return list(by_pid.values())


def _resolve_shm(shm: Optional[bool], start_method: str) -> bool:
    """Auto policy: shm on spawn-family platforms, inheritance under fork."""
    if shm is None:
        return start_method != "fork" and shm_available()
    return bool(shm) and shm_available()


def _timeout_error(
    pool_timeout: float, workers: int, chunks: int, scheduler: str
) -> PoolTimeoutError:
    return PoolTimeoutError(
        f"parallel skyline pool produced no result within"
        f" {pool_timeout:.0f}s ({workers} workers,"
        f" {chunks} chunks, scheduler={scheduler});"
        f" pool terminated"
    )


#: How often the parent samples pool progress while a ``progress``
#: callback is installed (seconds).
_PROGRESS_POLL_SECONDS = 0.2


def _collect_results(
    pool,
    task_fn: Callable,
    tasks: Sequence,
    pool_timeout: float,
    *,
    scheduler: str,
    workers: int,
    total_chunks: int,
    claimed,
    progress: Optional[Callable[[int, int], None]],
) -> List:
    """Drain the pool, optionally reporting ``(chunks_done, chunks_total)``.

    Without a ``progress`` callback this is the plain blocking
    ``map_async().get(timeout)`` of PR-2.  With one, the parent samples
    pool telemetry every :data:`_PROGRESS_POLL_SECONDS`: under the
    stealing scheduler it reads the shared claim table (chunks *claimed*
    lead completion by at most one in-flight chunk per worker); under the
    static scheduler it counts completions off ``imap_unordered`` — the
    caller restores deterministic chunk order afterwards.
    """
    if progress is None:
        pending = pool.map_async(task_fn, tasks, chunksize=1)
        try:
            return pending.get(timeout=pool_timeout)
        except mp.TimeoutError:
            raise _timeout_error(
                pool_timeout, workers, total_chunks, scheduler
            ) from None
    deadline = time.monotonic() + pool_timeout
    if scheduler == "stealing":
        pending = pool.map_async(task_fn, tasks, chunksize=1)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _timeout_error(
                    pool_timeout, workers, total_chunks, scheduler
                ) from None
            try:
                results = pending.get(
                    timeout=min(_PROGRESS_POLL_SECONDS, remaining)
                )
            except mp.TimeoutError:
                progress(min(int(sum(claimed)), total_chunks), total_chunks)
                continue
            progress(total_chunks, total_chunks)
            return results
    iterator = pool.imap_unordered(task_fn, tasks, chunksize=1)
    results: List = []
    while len(results) < len(tasks):
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise _timeout_error(
                pool_timeout, workers, total_chunks, scheduler
            ) from None
        try:
            results.append(
                iterator.next(timeout=min(_PROGRESS_POLL_SECONDS, remaining))
            )
        except mp.TimeoutError:
            continue
        progress(len(results), total_chunks)
    return results


def run_spans(
    groups: Sequence[Group],
    config: WorkerConfig,
    spans: Sequence[Tuple[int, int]],
    workers: int,
    *,
    pool_timeout: float = 300.0,
    scheduler: str = "static",
    shm: Optional[bool] = None,
    kind: str = "pairs",
    index=None,
    order: Optional[Sequence[int]] = None,
    owners: Optional[Sequence[Sequence[int]]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> PoolRun:
    """Run ``spans`` on a pool under the chosen scheduler and shipping mode.

    The general entry point behind both ``PAR`` and the parallel IN/LO
    path.  ``kind="pairs"`` interprets spans as linear pair-index ranges
    (:func:`compare_span`); ``kind="candidates"`` as slabs of positions
    into ``order`` (:func:`compare_candidate_span`, requires ``index`` —
    a :class:`~repro.index.rtree.FlatRTree` — and ``order``).

    ``scheduler="static"`` hands the spans to ``Pool.map`` as before;
    ``"stealing"`` ships the whole span list plus a shared claim table
    and runs one :func:`_steal_loop` per worker slot (``owners`` may
    pre-assign chunk queues; defaults to round-robin).

    ``shm=None`` auto-selects shared-memory shipping on spawn platforms.
    A wedged pool raises :class:`PoolTimeoutError` after ``pool_timeout``
    seconds in every mode.

    ``progress`` is called periodically with ``(chunks_done,
    chunks_total)`` while the pool runs (see :func:`_collect_results`).
    When the caller has tracing enabled and a span open, its
    :class:`~repro.obs.tracing.TraceContext` is shipped to the workers so
    their per-chunk spans come back in :attr:`ChunkOutcome.spans`; pool
    lifecycle (``pool_start`` / ``pool_end`` / ``pool_timeout``) goes to
    the structured run log.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if kind not in ("pairs", "candidates"):
        raise ValueError(f"kind must be 'pairs' or 'candidates', got {kind!r}")
    if kind == "candidates" and (index is None or order is None):
        raise ValueError("kind='candidates' requires index and order")
    if scheduler not in ("static", "stealing"):
        raise ValueError(
            f"scheduler must be 'static' or 'stealing', got {scheduler!r}"
        )
    if not spans:
        return PoolRun()
    start_method = preferred_start_method()
    ctx = mp.get_context(start_method)
    use_shm = _resolve_shm(shm, start_method)
    flags = (
        sharedctypes.RawArray("B", len(groups))
        if kind == "pairs" and config.exchange_interval > 0
        else None
    )
    arena = ShmArena() if use_shm else None
    try:
        shipment = ship_groups(groups, arena)
        index_arrays = None
        if index is not None:
            index_arrays = ship_arrays(index.arrays(), arena)
        payload = _PoolPayload(
            shipment=shipment,
            config=config,
            kind=kind,
            flags=flags,
            index_arrays=index_arrays,
            order=tuple(order) if order is not None else None,
            trace=obs_tracing.current_trace_context(),
        )
        if scheduler == "stealing":
            if owners is None:
                from .scheduler import assign_owners

                owners = assign_owners(len(spans), workers)
            payload.spans = tuple((int(a), int(b)) for a, b in spans)
            payload.owners = tuple(tuple(queue) for queue in owners)
            payload.claimed = sharedctypes.RawArray("B", len(spans))
            payload.lock = ctx.Lock()
            tasks: Sequence = list(range(workers))
            task_fn: Callable = _steal_loop
        else:
            tasks = list(spans)
            task_fn = _run_chunk
        pool = ctx.Pool(
            processes=workers, initializer=_init_pool, initargs=(payload,)
        )
        obs_runlog.emit(
            "pool_start",
            workers=workers,
            scheduler=scheduler,
            start_method=start_method,
            chunks=len(spans),
            kind=kind,
            shm=bool(use_shm),
        )
        pool_started = time.perf_counter()
        try:
            try:
                results = _collect_results(
                    pool,
                    task_fn,
                    tasks,
                    pool_timeout,
                    scheduler=scheduler,
                    workers=workers,
                    total_chunks=len(spans),
                    claimed=payload.claimed,
                    progress=progress,
                )
            finally:
                pool.terminate()
                pool.join()
        except PoolTimeoutError:
            obs_runlog.emit(
                "pool_timeout",
                workers=workers,
                scheduler=scheduler,
                chunks=len(spans),
                timeout_seconds=pool_timeout,
            )
            raise
        obs_runlog.emit(
            "pool_end",
            workers=workers,
            scheduler=scheduler,
            chunks=len(spans),
            elapsed_seconds=time.perf_counter() - pool_started,
        )
    finally:
        if arena is not None:
            arena.close()
    if scheduler == "stealing":
        outcomes: List[ChunkOutcome] = []
        reports: List[WorkerReport] = []
        for slot_outcomes, report in results:
            outcomes.extend(slot_outcomes)
            reports.append(report)
        # deterministic merge order regardless of who ran what
        outcomes.sort(key=lambda outcome: (outcome.start, outcome.stop))
        return PoolRun(outcomes=outcomes, reports=reports)
    if progress is not None:
        # imap_unordered delivered in completion order; restore chunk order
        # so the merge stays bit-identical to the blocking path.
        results.sort(key=lambda outcome: (outcome.start, outcome.stop))
    return PoolRun(outcomes=results, reports=_reports_from_outcomes(results))


def execute_chunks(
    groups: Sequence[Group],
    config: WorkerConfig,
    spans: Sequence[Tuple[int, int]],
    workers: int,
    pool_timeout: float = 300.0,
) -> List[ChunkOutcome]:
    """Run ``spans`` over a ``workers``-sized process pool; ordered results.

    The PR-2 entry point, kept as a thin wrapper over :func:`run_spans`
    with the static scheduler and automatic shipping.  The dataset travels
    to the pool exactly once; afterwards only tiny span tuples and compact
    verdict lists cross the process boundary.  A deadlocked or wedged pool
    raises :class:`PoolTimeoutError` after ``pool_timeout`` seconds
    instead of hanging the caller (and CI) forever.
    """
    run = run_spans(
        groups,
        config,
        spans,
        workers,
        pool_timeout=pool_timeout,
        scheduler="static",
    )
    return run.outcomes


def map_tasks(
    task_fn: Callable,
    items: Sequence,
    workers: int,
    pool_timeout: float = 300.0,
) -> List:
    """Map picklable ``items`` over a pool with the shared failure mode.

    Generic helper for coarse-grained fan-out (the partitioned baseline's
    local phase): same start-method resolution and the same
    :class:`PoolTimeoutError` fail-fast as the chunk executor, so no
    caller can hang forever on a wedged pool.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    items = list(items)
    if not items:
        return []
    ctx = mp.get_context(preferred_start_method())
    pool = ctx.Pool(processes=workers)
    try:
        pending = pool.map_async(task_fn, items, chunksize=1)
        try:
            return pending.get(timeout=pool_timeout)
        except mp.TimeoutError:
            raise PoolTimeoutError(
                f"worker pool produced no result within {pool_timeout:.0f}s"
                f" ({workers} workers, {len(items)} tasks); pool terminated"
            ) from None
    finally:
        pool.terminate()
        pool.join()
