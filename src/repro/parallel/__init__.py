"""repro.parallel — parallel group-pair execution subsystem.

Layers (bottom-up):

* :mod:`repro.parallel.partition` — linear indexing and chunking of the
  upper-triangular group-pair space (pure math, no engine imports; also
  backs the adaptive dispatcher's duplicate-free overlap sampling).
* :mod:`repro.parallel.executor` — the process-pool driver: one-shot data
  shipping (fork-inherited or pickled once per worker), the chunk kernel,
  the lock-free pruning-exchange flags, and the fault-tolerance layer —
  a pool timeout for wedged pools, a worker-liveness poll that surfaces
  crashes in seconds (:class:`WorkerCrashError`), chunk retry with
  backoff and an optional serial fallback (``on_failure`` policy).
* :mod:`repro.parallel.faults` — opt-in fault injection (``$REPRO_FAULTS``
  or :class:`FaultSpec`): crash / hang / slow / exception at chunk *k* or
  with probability *p*, for testing the recovery paths.
* :class:`~repro.core.algorithms.parallel.ParallelSkylineAlgorithm` — the
  ``PAR`` algorithm gluing both into the standard
  :class:`~repro.core.algorithms.base.AggregateSkylineAlgorithm` template
  (re-exported here lazily to avoid an import cycle with
  ``repro.core.algorithms``).

See ``docs/parallel.md`` for the architecture and determinism guarantees.
"""

from .executor import (
    ON_FAILURE_POLICIES,
    ChunkOutcome,
    PoolRun,
    PoolTimeoutError,
    WorkerConfig,
    WorkerCrashError,
    apply_verdicts,
    compare_candidate_span,
    compare_span,
    execute_chunks,
    map_tasks,
    preferred_start_method,
    resolve_workers,
    run_spans,
)
from .partition import (
    chunk_ranges,
    index_of_pair,
    iter_pairs,
    pair_count,
    pair_from_index,
    sample_pair_indices,
)
from .faults import FAULTS_ENV_VAR, FaultSpec, InjectedFaultError
from .scheduler import ChunkLedger, WorkerReport, assign_owners, guided_spans
from .shm import ArrayRef, GroupShipment, ShmArena, ship_groups, load_groups

__all__ = [
    "ON_FAILURE_POLICIES",
    "ChunkOutcome",
    "PoolRun",
    "PoolTimeoutError",
    "WorkerConfig",
    "WorkerCrashError",
    "FAULTS_ENV_VAR",
    "FaultSpec",
    "InjectedFaultError",
    "apply_verdicts",
    "compare_candidate_span",
    "compare_span",
    "execute_chunks",
    "map_tasks",
    "preferred_start_method",
    "resolve_workers",
    "run_spans",
    "chunk_ranges",
    "index_of_pair",
    "iter_pairs",
    "pair_count",
    "pair_from_index",
    "sample_pair_indices",
    "ChunkLedger",
    "WorkerReport",
    "assign_owners",
    "guided_spans",
    "ArrayRef",
    "GroupShipment",
    "ShmArena",
    "ship_groups",
    "load_groups",
    "ParallelSkylineAlgorithm",
]


def __getattr__(name: str):
    # Lazy re-export: the algorithm lives in repro.core.algorithms (it
    # subclasses the shared base class); importing it eagerly here would
    # cycle with repro.core.algorithms -> repro.parallel.
    if name == "ParallelSkylineAlgorithm":
        from ..core.algorithms.parallel import ParallelSkylineAlgorithm

        return ParallelSkylineAlgorithm
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
