"""Shared-memory ndarray shipping for spawn-platform pools.

Under the ``fork`` start method workers inherit the parent's memory
copy-on-write, so the group payload ships for free.  Under ``spawn``
(Windows, macOS default, or ``REPRO_START_METHOD=spawn``) the PR-2
executor pickled the full group list once per worker at pool start-up —
cheap for small workloads, painful for the paper-scale ones.  This
module removes that copy: the parent packs the group ndarrays into
``multiprocessing.shared_memory`` segments once, and every worker maps
the same physical pages, reconstructing zero-copy read-only views.

Leak safety
-----------
POSIX shared memory outlives the creating process unless unlinked, so a
crashed parent must not strand segments in ``/dev/shm``.  Every segment
created here is owned by a :class:`ShmArena` whose cleanup runs through
``weakref.finalize`` — it fires on explicit :meth:`ShmArena.close`, on
garbage collection, *and* at interpreter exit, whichever comes first,
and is idempotent.  Error paths therefore cannot leak: the arena is
created before the pool and finalized in a ``finally``.

Besides the one-shot executor, :mod:`repro.engine` builds *long-lived*
arenas on this module: a :class:`~repro.engine.pool.PersistentPool` keeps
one arena per attached dataset (plus pinned index/order arrays) open for
the whole session and releases them deterministically on
``SkylineEngine.close()`` / ``detach()`` — same finalize discipline,
longer lifetime.

Attach-side quirk: CPython's ``resource_tracker`` (bpo-39959) registers
*attached* segments as if the attaching process owned them, producing
spurious "leaked shared_memory" warnings and — worse — early unlinks
when a worker exits.  :func:`attach_array` unregisters the segment after
attaching; only the creating arena unlinks.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.groups import Group

try:  # pragma: no cover - the stdlib module exists on every supported python
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ArrayRef",
    "ShmArena",
    "GroupShipment",
    "shm_available",
    "attach_array",
    "detach_all",
    "ship_groups",
    "load_groups",
    "ship_arrays",
    "load_arrays",
]


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can be used."""

    return shared_memory is not None


@dataclass(frozen=True)
class ArrayRef:
    """A picklable handle to an ndarray living in a shared segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _release_segments(segments: List) -> None:
    """Close and unlink every owned segment; idempotent and exception-safe."""

    while segments:
        seg = segments.pop()
        try:
            seg.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


class ShmArena:
    """Owner of a set of shared-memory segments with leak-proof cleanup.

    The parent creates one arena per pooled run, :meth:`share`\\ s the
    ndarrays it wants to ship, hands the returned :class:`ArrayRef`\\ s
    to the pool initializer, and calls :meth:`close` when the pool is
    done.  If it never does (exception, ctrl-C, GC), the
    ``weakref.finalize`` hook unlinks the segments anyway.
    """

    def __init__(self) -> None:
        if not shm_available():  # pragma: no cover - py always has it
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._segments: List = []
        self._finalizer = weakref.finalize(self, _release_segments, self._segments)

    def share(self, array: np.ndarray) -> ArrayRef:
        """Copy *array* into a fresh segment and return its handle."""

        array = np.ascontiguousarray(array)
        seg = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        self._segments.append(seg)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
        view[...] = array
        return ArrayRef(name=seg.name, shape=tuple(array.shape), dtype=array.dtype.str)

    @property
    def segment_names(self) -> List[str]:
        """Names of the currently owned segments (for leak tests)."""

        return [seg.name for seg in self._segments]

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Close and unlink all owned segments (idempotent)."""

        self._finalizer()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# attach side (pool workers)
# ----------------------------------------------------------------------

#: Segments this process has attached, keyed by name.  Keeping the
#: ``SharedMemory`` objects alive keeps the mapped buffers valid for the
#: zero-copy views handed out by :func:`attach_array`.
_ATTACHED: Dict[str, object] = {}


def _attach_untracked(name: str):
    """Attach a segment without registering it with the resource tracker.

    Attaching processes must not register (bpo-39959): pool workers share
    the parent's tracker, so an attach-side register/unregister pair would
    cancel the *owner's* registration — losing crash protection and making
    the final unlink warn.  Python 3.13+ has ``track=False`` for exactly
    this; older versions need the register call suppressed for the
    duration of the attach.
    """

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_array(ref: ArrayRef) -> np.ndarray:
    """Map the segment behind *ref* and return a read-only ndarray view."""

    seg = _ATTACHED.get(ref.name)
    if seg is None:
        seg = _attach_untracked(ref.name)
        _ATTACHED[ref.name] = seg
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=seg.buf)
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every attached segment (without unlinking; the owner does that)."""

    while _ATTACHED:
        _, seg = _ATTACHED.popitem()
        try:
            seg.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


# ----------------------------------------------------------------------
# group payloads
# ----------------------------------------------------------------------


@dataclass
class GroupShipment:
    """A group list packed for the pool initializer.

    Either ``inline`` holds the :class:`Group` objects directly (fork:
    inherited copy-on-write; small spawn runs: pickled once per worker)
    or ``values`` / ``offsets`` reference shared segments holding the
    concatenated record matrix and the per-group row offsets.
    """

    keys: Tuple[Hashable, ...] = ()
    indices: Tuple[int, ...] = ()
    inline: Optional[List[Group]] = None
    values: Optional[ArrayRef] = None
    offsets: Optional[ArrayRef] = None

    @property
    def via_shm(self) -> bool:
        return self.values is not None


def _contiguous_block(
    groups: Sequence[Group],
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Detect the columnar fast path: groups that are consecutive zero-copy
    slices of one contiguous base matrix (what ``GroupedDataset`` hands out).

    Returns ``(matrix_view, offsets)`` spanning all groups without copying,
    or ``None`` when the groups do not form one contiguous block (standalone
    groups, shuffled subsets, mixed dtypes) — callers then re-flatten.
    """

    if not groups:
        return None
    first_span = getattr(groups[0], "_span", None)
    if first_span is None:
        return None
    base = groups[0].values.base
    if (
        base is None
        or base.ndim != 2
        or base.dtype != np.float64
        or not base.flags["C_CONTIGUOUS"]
    ):
        return None
    start_row = int(first_span[0])
    offsets = np.zeros(len(groups) + 1, dtype=np.int64)
    expected = start_row
    total = 0
    for pos, group in enumerate(groups):
        span = getattr(group, "_span", None)
        if (
            span is None
            or span[0] != expected
            or group.values.base is not base
        ):
            return None
        expected = int(span[1])
        total += expected - int(span[0])
        offsets[pos + 1] = total
    if expected > base.shape[0]:
        return None
    return base[start_row:expected], offsets


def ship_groups(
    groups: Sequence[Group], arena: Optional[ShmArena] = None
) -> GroupShipment:
    """Pack *groups* for shipping; with an *arena*, via shared memory.

    Groups handed out by a columnar :class:`~repro.core.groups.GroupedDataset`
    are consecutive views of one contiguous record matrix, so the pack is a
    straight buffer handoff — the matrix view goes to :meth:`ShmArena.share`
    as-is (one copy into the segment, no intermediate re-flatten).  Only
    heterogeneous group lists still pay the stacking copy.
    """

    if arena is None:
        return GroupShipment(inline=list(groups))
    block = _contiguous_block(groups)
    if block is not None:
        stacked, offsets = block
    else:
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        for pos, group in enumerate(groups):
            offsets[pos + 1] = offsets[pos] + group.values.shape[0]
        dims = groups[0].values.shape[1] if groups else 0
        stacked = np.empty((int(offsets[-1]), dims), dtype=np.float64)
        for pos, group in enumerate(groups):
            stacked[int(offsets[pos]) : int(offsets[pos + 1])] = group.values
    return GroupShipment(
        keys=tuple(group.key for group in groups),
        indices=tuple(group.index for group in groups),
        values=arena.share(stacked),
        offsets=arena.share(offsets),
    )


def load_groups(shipment: GroupShipment) -> List[Group]:
    """Materialise the group list in a worker; zero-copy under shm."""

    if shipment.inline is not None:
        return shipment.inline
    values = attach_array(shipment.values)
    offsets = attach_array(shipment.offsets)
    groups: List[Group] = []
    for pos, (key, index) in enumerate(zip(shipment.keys, shipment.indices)):
        rows = values[int(offsets[pos]) : int(offsets[pos + 1])]
        # Group's ascontiguousarray is a no-op for this contiguous
        # float64 slice, so the worker never copies the payload.
        groups.append(Group(key, rows, index=index))
    return groups


# ----------------------------------------------------------------------
# generic named-array payloads (used for the flat index)
# ----------------------------------------------------------------------

ShippedArrays = Mapping[str, Union[ArrayRef, np.ndarray]]


def ship_arrays(
    arrays: Mapping[str, np.ndarray], arena: Optional[ShmArena] = None
) -> Dict[str, Union[ArrayRef, np.ndarray]]:
    """Ship a dict of named ndarrays, via *arena* when given."""

    if arena is None:
        return dict(arrays)
    return {name: arena.share(array) for name, array in arrays.items()}


def load_arrays(shipped: ShippedArrays) -> Dict[str, np.ndarray]:
    """Inverse of :func:`ship_arrays` on the worker side."""

    return {
        name: attach_array(value) if isinstance(value, ArrayRef) else value
        for name, value in shipped.items()
    }
