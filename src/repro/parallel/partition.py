"""Pair-space partitioning for parallel group-pair execution.

The aggregate skyline's outer loop ranges over the *upper triangle* of the
m x m group-comparison matrix (Equation 3 of the paper): the unordered pairs
``(i, j)`` with ``i < j``.  This module gives that triangle a flat,
row-major *linear index* so it can be

* cut into contiguous, near-equal chunks for a worker pool
  (:func:`chunk_ranges` + :func:`iter_pairs`), and
* sampled without replacement for cheap dataset diagnostics
  (:func:`sample_pair_indices`, used by the adaptive dispatcher's overlap
  estimator).

Everything here is pure integer math (plus an optional numpy RNG for
sampling) — no engine imports — so both :mod:`repro.core` and
:mod:`repro.parallel` can depend on it without cycles.

Linear layout (``n = 4``)::

    k:      0      1      2      3      4      5
    pair: (0,1)  (0,2)  (0,3)  (1,2)  (1,3)  (2,3)

``index_of_pair`` and :func:`pair_from_index` are exact inverses for every
``0 <= k < pair_count(n)`` (see ``tests/test_parallel.py``).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "pair_count",
    "index_of_pair",
    "pair_from_index",
    "iter_pairs",
    "chunk_ranges",
    "sample_pair_indices",
]


def pair_count(n: int) -> int:
    """Number of unordered pairs over ``n`` items: ``n * (n - 1) / 2``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return n * (n - 1) // 2


def index_of_pair(i: int, j: int, n: int) -> int:
    """Row-major linear index of the pair ``(i, j)`` with ``i < j < n``."""
    if not 0 <= i < j < n:
        raise ValueError(f"need 0 <= i < j < n, got i={i}, j={j}, n={n}")
    return i * n - i * (i + 1) // 2 + (j - i - 1)


def pair_from_index(k: int, n: int) -> Tuple[int, int]:
    """Inverse of :func:`index_of_pair` (exact integer arithmetic).

    Solves the row ``i`` from the triangular-number inequality with
    ``math.isqrt`` — no floating point, so it stays exact for huge ``n``.
    """
    total = pair_count(n)
    if not 0 <= k < total:
        raise ValueError(f"pair index {k} out of range for n={n}")
    # Count pairs from the *end*: row i is the unique row with
    # rem(i+1) <= total - 1 - k < rem(i), where rem(i) = C(n - i, 2).
    rest = total - 1 - k
    i = n - 2 - (math.isqrt(8 * rest + 1) - 1) // 2
    j = k - (i * n - i * (i + 1) // 2) + i + 1
    return i, j


def iter_pairs(start: int, stop: int, n: int) -> Iterator[Tuple[int, int]]:
    """Yield the pairs with linear indices ``start <= k < stop``.

    Decodes ``start`` once and then walks the triangle incrementally, so the
    per-pair cost is O(1) regardless of where the chunk sits.
    """
    if start >= stop:
        return
    i, j = pair_from_index(start, n)
    for _ in range(stop - start):
        yield i, j
        j += 1
        if j >= n:
            i += 1
            j = i + 1


def chunk_ranges(total: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into up to ``chunks`` contiguous, near-equal
    ``(start, stop)`` ranges (never more ranges than items; deterministic)."""
    if chunks < 1:
        raise ValueError("chunks must be positive")
    if total <= 0:
        return []
    chunks = min(chunks, total)
    base, remainder = divmod(total, chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for c in range(chunks):
        size = base + (1 if c < remainder else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def sample_pair_indices(n: int, samples: int, rng) -> Sequence[int]:
    """``samples`` *distinct* linear pair indices drawn with ``rng``.

    Sampling is without replacement (no pair is probed twice — the old
    overlap estimator could waste its budget on duplicates).  Small pair
    spaces are permuted outright; large ones use rejection sampling into a
    set, which is fast while ``samples`` is well below ``pair_count(n)``.
    """
    total = pair_count(n)
    samples = min(samples, total)
    if samples <= 0:
        return []
    if total <= 4 * samples:
        return [int(k) for k in rng.permutation(total)[:samples]]
    chosen: set = set()
    while len(chosen) < samples:
        draw = rng.integers(0, total, size=samples - len(chosen))
        chosen.update(int(k) for k in draw)
    return sorted(chosen)
