"""Span-based tracing for the skyline engine.

A :class:`Tracer` produces :class:`Span` context managers with monotonic
timestamps, parent/child nesting, per-span attributes and events.  Finished
*root* spans are handed to a sink: the ring-buffer :class:`InMemorySink`
(default) or the append-only :class:`JsonlSink`.  :func:`render_trace`
pretty-prints a span tree for terminals.

Overhead discipline
-------------------
The process-global tracer defaults to :data:`NOOP_TRACER`, whose ``span()``
returns a shared, stateless no-op span — entering it is two cheap method
calls and no allocation, so instrumentation points can be left in hot code
unconditionally.  :func:`enable_tracing` swaps in a recording tracer;
callers that need to branch can check ``span.is_recording``.

Example::

    from repro.obs import tracing

    tracer = tracing.enable_tracing()
    with tracer.span("skyline.compute", algorithm="LO") as root:
        with tracer.span("index.build"):
            ...
    print(tracing.render_trace(root))
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "NOOP_SPAN",
    "InMemorySink",
    "JsonlSink",
    "render_trace",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "enable_tracing",
    "disable_tracing",
]


class Span:
    """One timed operation; a context manager that nests automatically."""

    __slots__ = (
        "name",
        "attributes",
        "events",
        "children",
        "start_wall",
        "_start",
        "_end",
        "_tracer",
    )

    is_recording = True

    def __init__(self, name: str, tracer: "Tracer", attributes: Optional[Dict] = None):
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[Dict[str, object]] = []
        self.children: List["Span"] = []
        self.start_wall: Optional[float] = None
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._tracer = tracer

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- recording ------------------------------------------------------

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes) -> None:
        offset = (
            time.perf_counter() - self._start
            if self._start is not None
            else 0.0
        )
        self.events.append(
            {"name": name, "offset_seconds": offset, **attributes}
        )

    @property
    def duration_seconds(self) -> float:
        """Elapsed time; live while the span is still open."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    @property
    def ended(self) -> bool:
        return self._end is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_unix": self.start_wall,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1e3:.2f}ms,"
            f" children={len(self.children)})"
        )


class _NoopSpan:
    """Shared, stateless span used when tracing is disabled."""

    __slots__ = ()

    is_recording = False
    name = ""
    attributes: Dict[str, object] = {}
    events: List[Dict[str, object]] = []
    children: List["Span"] = []
    duration_seconds = 0.0
    ended = False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


NOOP_SPAN = _NoopSpan()


class InMemorySink:
    """Ring buffer of the most recent finished root spans."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def traces(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def close(self) -> None:
        pass


class JsonlSink:
    """Append every finished root span as one JSON line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class Tracer:
    """Produces spans; tracks the per-thread span stack for nesting."""

    enabled = True

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else InMemorySink()
        self._local = threading.local()

    def span(self, name: str, **attributes) -> Span:
        return Span(name, self, attributes)

    def current_span(self):
        """Innermost open span of this thread (``NOOP_SPAN`` if none)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else NOOP_SPAN

    # -- internal -------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        if not stack:
            self.sink.emit(span)


class NoopTracer:
    """Near-zero-cost tracer used while tracing is disabled."""

    enabled = False

    def span(self, name: str, **attributes) -> _NoopSpan:
        return NOOP_SPAN

    def current_span(self) -> _NoopSpan:
        return NOOP_SPAN


NOOP_TRACER = NoopTracer()


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _format_attributes(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in attributes.items())
    return f"  [{inner}]"


def render_trace(span, max_depth: Optional[int] = None) -> str:
    """Human-readable tree of a span and its descendants."""
    if not getattr(span, "is_recording", False):
        return "(no trace recorded)"
    lines: List[str] = []

    def walk(node, prefix: str, child_prefix: str, depth: int) -> None:
        lines.append(
            f"{prefix}{node.name}  {_format_duration(node.duration_seconds)}"
            f"{_format_attributes(node.attributes)}"
        )
        for event in node.events:
            name = event.get("name", "event")
            offset = event.get("offset_seconds", 0.0)
            lines.append(
                f"{child_prefix}· {name} @{_format_duration(float(offset))}"
            )
        if max_depth is not None and depth >= max_depth:
            if node.children:
                lines.append(f"{child_prefix}… ({len(node.children)} spans)")
            return
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            walk(child, child_prefix + branch, child_prefix + extend, depth + 1)

    walk(span, "", "", 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# process-global tracer
# ----------------------------------------------------------------------

_tracer = NOOP_TRACER
_state_lock = threading.Lock()


def get_tracer():
    """The process-global tracer (no-op unless tracing was enabled)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Replace the global tracer (returns the previous one)."""
    global _tracer
    with _state_lock:
        previous, _tracer = _tracer, tracer
    return previous


def enable_tracing(sink=None) -> Tracer:
    """Install (and return) a recording tracer as the global tracer."""
    tracer = Tracer(sink=sink)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Back to the no-op tracer."""
    set_tracer(NOOP_TRACER)


@contextmanager
def use_tracer(tracer=None):
    """Scope the global tracer (a fresh recording tracer by default)."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
