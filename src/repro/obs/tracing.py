"""Span-based tracing for the skyline engine.

A :class:`Tracer` produces :class:`Span` context managers with monotonic
timestamps, parent/child nesting, per-span attributes and events.  Finished
*root* spans are handed to a sink: the ring-buffer :class:`InMemorySink`
(default) or the append-only :class:`JsonlSink`.  :func:`render_trace`
pretty-prints a span tree for terminals.

Distributed tracing (v2)
------------------------
Every recorded span carries three stable identifiers:

* ``trace_id`` — shared by every span of one logical run, across threads
  *and processes*;
* ``span_id`` — unique per span;
* ``parent_id`` — the ``span_id`` of the parent span (``None`` for a true
  root).

A :class:`TraceContext` snapshots ``(trace_id, span_id)`` of the current
span so it can be shipped to pool workers (it is a tiny frozen dataclass
that pickles under both ``fork`` and ``spawn``); a worker-side
:class:`Tracer` built with that context parents its root spans under the
originating span.  The serialized worker spans travel back with the chunk
results and are re-attached to the parent tree via :meth:`Span.from_dict`,
so a ``workers=4`` run still renders as one coherent tree.

Overhead discipline
-------------------
The process-global tracer defaults to :data:`NOOP_TRACER`, whose ``span()``
returns a shared, stateless no-op span — entering it is two cheap method
calls and no allocation, so instrumentation points can be left in hot code
unconditionally.  :func:`enable_tracing` swaps in a recording tracer;
callers that need to branch can check ``span.is_recording``.

Example::

    from repro.obs import tracing

    tracer = tracing.enable_tracing()
    with tracer.span("skyline.compute", algorithm="LO") as root:
        with tracer.span("index.build"):
            ...
    print(tracing.render_trace(root))
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "NOOP_SPAN",
    "InMemorySink",
    "JsonlSink",
    "render_trace",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "enable_tracing",
    "disable_tracing",
    "current_trace_context",
    "new_trace_id",
    "new_span_id",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace identifier (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span identifier (16 hex chars)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Picklable snapshot of "where we are" in a trace.

    Shipped through pool-worker initializers so spans recorded in worker
    processes share the parent run's ``trace_id`` and parent under the
    span that launched the pool.
    """

    trace_id: str
    span_id: Optional[str] = None


class Span:
    """One timed operation; a context manager that nests automatically."""

    __slots__ = (
        "name",
        "attributes",
        "events",
        "children",
        "start_wall",
        "trace_id",
        "span_id",
        "parent_id",
        "_start",
        "_end",
        "_tracer",
    )

    is_recording = True

    def __init__(self, name: str, tracer: "Tracer", attributes: Optional[Dict] = None):
        self.name = name
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[Dict[str, object]] = []
        self.children: List["Span"] = []
        self.start_wall: Optional[float] = None
        #: Stable identifiers; assigned when the span is opened (the trace
        #: and parent ids depend on the enclosing span at that moment).
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._tracer = tracer

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self._start = time.perf_counter()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    # -- recording ------------------------------------------------------

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes) -> None:
        offset = (
            time.perf_counter() - self._start
            if self._start is not None
            else 0.0
        )
        self.events.append(
            {"name": name, "offset_seconds": offset, **attributes}
        )

    @property
    def duration_seconds(self) -> float:
        """Elapsed time; live while the span is still open."""
        if self._start is None:
            return 0.0
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    @property
    def ended(self) -> bool:
        return self._end is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_wall,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a finished span tree from its :meth:`to_dict` form.

        Used to graft spans recorded in pool workers back onto the parent
        process's tree.  The rebuilt spans are closed (``ended`` is true)
        and render/serialize exactly like locally recorded ones.
        """
        span = cls(str(data.get("name", "")), _DETACHED_TRACER)
        span.trace_id = data.get("trace_id")
        span.span_id = data.get("span_id")
        span.parent_id = data.get("parent_id")
        span.start_wall = data.get("start_unix")
        span.attributes = dict(data.get("attributes") or {})
        span.events = [dict(event) for event in data.get("events") or ()]
        duration = float(data.get("duration_seconds") or 0.0)
        span._start = 0.0
        span._end = duration
        span.children = [
            cls.from_dict(child) for child in data.get("children") or ()
        ]
        return span

    def adopt(self, child: "Span") -> None:
        """Attach an already-finished span (e.g. a worker span) as a child."""
        self.children.append(child)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.name!r}, {self.duration_seconds * 1e3:.2f}ms,"
            f" children={len(self.children)})"
        )


class _NoopSpan:
    """Shared, stateless span used when tracing is disabled."""

    __slots__ = ()

    is_recording = False
    name = ""
    attributes: Dict[str, object] = {}
    events: List[Dict[str, object]] = []
    children: List["Span"] = []
    duration_seconds = 0.0
    ended = False
    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, name: str, **attributes) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


NOOP_SPAN = _NoopSpan()


class InMemorySink:
    """Ring buffer of the most recent finished root spans."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._spans: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def traces(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def close(self) -> None:
        pass


class JsonlSink:
    """Append every finished root span as one JSON line.

    Durability: every emit is written and flushed as a single line while
    holding the lock, and the handle is additionally closed via ``atexit``
    (and the context-manager protocol), so spans from runs that crash or
    time out later are still on disk.  Partially written trailing lines
    (a crash *mid*-write) are tolerated by :func:`read_jsonl`.
    """

    def __init__(self, path: Union[str, Path]):
        import atexit

        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._atexit = atexit.register(self.close)

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        import atexit

        with self._lock:
            if not self._handle.closed:
                self._handle.close()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL file written by :class:`JsonlSink` (or the run log).

    Tolerates a partially written final line — the tail a crashed or
    killed process leaves behind — by skipping lines that fail to parse,
    so everything that *was* flushed remains readable.
    """
    records: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


class Tracer:
    """Produces spans; tracks the per-thread span stack for nesting.

    ``context`` optionally parents this tracer's *root* spans under a
    remote span: they inherit ``context.trace_id`` and set their
    ``parent_id`` to ``context.span_id``.  This is how worker processes
    keep recording into the trace of the run that spawned them.
    """

    enabled = True

    def __init__(self, sink=None, context: Optional[TraceContext] = None):
        self.sink = sink if sink is not None else InMemorySink()
        self.context = context
        self._local = threading.local()

    def span(self, name: str, **attributes) -> Span:
        return Span(name, self, attributes)

    def current_span(self):
        """Innermost open span of this thread (``NOOP_SPAN`` if none)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else NOOP_SPAN

    # -- internal -------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        span.span_id = new_span_id()
        if stack:
            parent = stack[-1]
            parent.children.append(span)
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
        elif self.context is not None:
            span.trace_id = self.context.trace_id
            span.parent_id = self.context.span_id
        else:
            span.trace_id = new_trace_id()
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        if not stack:
            self.sink.emit(span)


class NoopTracer:
    """Near-zero-cost tracer used while tracing is disabled."""

    enabled = False

    def span(self, name: str, **attributes) -> _NoopSpan:
        return NOOP_SPAN

    def current_span(self) -> _NoopSpan:
        return NOOP_SPAN


NOOP_TRACER = NoopTracer()

#: Placeholder tracer for spans rebuilt via :meth:`Span.from_dict`; such
#: spans are already finished and are never used as context managers.
_DETACHED_TRACER = NOOP_TRACER


def current_trace_context(tracer=None) -> Optional[TraceContext]:
    """Snapshot the (global) tracer's current span as a :class:`TraceContext`.

    Returns ``None`` when tracing is disabled or no span is open — callers
    ship the result to workers as-is, and ``None`` simply means "don't
    record over there either".
    """
    tracer = tracer if tracer is not None else get_tracer()
    if not getattr(tracer, "enabled", False):
        return None
    span = tracer.current_span()
    if not span.is_recording or span.trace_id is None:
        return None
    return TraceContext(trace_id=span.trace_id, span_id=span.span_id)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _format_duration(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _format_attributes(attributes: Dict[str, object]) -> str:
    if not attributes:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in attributes.items())
    return f"  [{inner}]"


def render_trace(span, max_depth: Optional[int] = None) -> str:
    """Human-readable tree of a span and its descendants."""
    if not getattr(span, "is_recording", False):
        return "(no trace recorded)"
    lines: List[str] = []

    def walk(node, prefix: str, child_prefix: str, depth: int) -> None:
        lines.append(
            f"{prefix}{node.name}  {_format_duration(node.duration_seconds)}"
            f"{_format_attributes(node.attributes)}"
        )
        for event in node.events:
            name = event.get("name", "event")
            offset = event.get("offset_seconds", 0.0)
            lines.append(
                f"{child_prefix}· {name} @{_format_duration(float(offset))}"
            )
        if max_depth is not None and depth >= max_depth:
            if node.children:
                lines.append(f"{child_prefix}… ({len(node.children)} spans)")
            return
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            walk(child, child_prefix + branch, child_prefix + extend, depth + 1)

    walk(span, "", "", 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# process-global tracer
# ----------------------------------------------------------------------

_tracer = NOOP_TRACER
_state_lock = threading.Lock()


def get_tracer():
    """The process-global tracer (no-op unless tracing was enabled)."""
    return _tracer


def set_tracer(tracer) -> object:
    """Replace the global tracer (returns the previous one)."""
    global _tracer
    with _state_lock:
        previous, _tracer = _tracer, tracer
    return previous


def enable_tracing(sink=None) -> Tracer:
    """Install (and return) a recording tracer as the global tracer."""
    tracer = Tracer(sink=sink)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Back to the no-op tracer."""
    set_tracer(NOOP_TRACER)


@contextmanager
def use_tracer(tracer=None):
    """Scope the global tracer (a fresh recording tracer by default)."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
