"""Benchmark time series with rolling-baseline regression detection.

A :class:`PerfHistory` is an append-only ``BENCH_*.json`` file holding one
entry per benchmark run.  Entries are keyed by what makes runs comparable:

* the **dataset fingerprint** (content hash, so a regenerated dataset
  starts a fresh series instead of polluting an old one),
* the **algorithm** name, and
* the normalized **execution** configuration (workers / scheduler / ...).

Each entry records wall-clock latency plus any work counters the caller
supplies (comparisons, pairs examined, window queries, ...), a UTC
timestamp, and a free-form label (e.g. git SHA or CI run id).

Regression checking compares the latest entry of every series against a
**rolling baseline** — the median of the preceding ``baseline_window``
entries — and flags any metric that grew by more than ``threshold``
(latency and counters are both "higher is worse" here).  The median makes
the baseline robust to a single noisy run; the window makes it follow
genuine performance changes instead of pinning to day-one numbers.

The ``repro perf record / report / check`` CLI subcommands and the
benchmark suite's conftest both drive this module; see
``docs/benchmarking.md``.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "PerfEntry",
    "PerfHistory",
    "Regression",
    "RegressionReport",
    "parse_threshold",
    "DEFAULT_BASELINE_WINDOW",
    "DEFAULT_THRESHOLD",
]

_FORMAT_VERSION = 1

#: Rolling-baseline width: the median of up to this many prior entries.
DEFAULT_BASELINE_WINDOW = 5

#: Default regression threshold (fraction of the baseline).
DEFAULT_THRESHOLD = 0.2


def parse_threshold(value: Union[str, float, int]) -> float:
    """Parse ``"20%"`` / ``"0.2"`` / ``0.2`` into a fraction.

    Bare numbers >= 1 are treated as percentages (``20`` means 20%), so
    both CLI spellings do the obvious thing.
    """
    if isinstance(value, str):
        text = value.strip()
        if text.endswith("%"):
            return float(text[:-1]) / 100.0
        value = float(text)
    value = float(value)
    if value < 0:
        raise ValueError(f"threshold must be non-negative, got {value}")
    return value / 100.0 if value >= 1.0 else value


@dataclass
class PerfEntry:
    """One benchmark run in the time series."""

    fingerprint: str
    algorithm: str
    elapsed_seconds: float
    execution: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    recorded_at: float = 0.0
    label: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        """What makes two entries comparable (same series)."""
        return (
            self.fingerprint,
            self.algorithm,
            json.dumps(self.execution, sort_keys=True, default=str),
        )

    def metric(self, name: str) -> Optional[float]:
        if name == "elapsed_seconds":
            return float(self.elapsed_seconds)
        value = self.counters.get(name)
        return float(value) if value is not None else None

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "elapsed_seconds": self.elapsed_seconds,
            "execution": dict(self.execution),
            "counters": dict(self.counters),
            "recorded_at": self.recorded_at,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfEntry":
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            algorithm=str(data.get("algorithm", "")),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            execution=dict(data.get("execution") or {}),
            counters={
                str(k): float(v)
                for k, v in (data.get("counters") or {}).items()
            },
            recorded_at=float(data.get("recorded_at", 0.0)),
            label=str(data.get("label", "")),
        )


@dataclass
class Regression:
    """One metric of one series that exceeded the threshold."""

    fingerprint: str
    algorithm: str
    execution: Dict[str, object]
    metric: str
    latest: float
    baseline: float
    threshold: float

    @property
    def ratio(self) -> float:
        """Fractional growth over the baseline (0.25 == +25%)."""
        if self.baseline == 0:
            return float("inf") if self.latest > 0 else 0.0
        return self.latest / self.baseline - 1.0

    def describe(self) -> str:
        execution = json.dumps(self.execution, sort_keys=True, default=str)
        return (
            f"{self.algorithm} [{self.fingerprint[:12]}] {execution}"
            f" {self.metric}: {self.latest:.6g} vs baseline"
            f" {self.baseline:.6g} (+{self.ratio * 100:.1f}%,"
            f" threshold {self.threshold * 100:.0f}%)"
        )


@dataclass
class RegressionReport:
    """Outcome of :meth:`PerfHistory.check` over every series."""

    regressions: List[Regression] = field(default_factory=list)
    series_checked: int = 0
    series_skipped: int = 0  # too short for a baseline

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines = [
            f"checked {self.series_checked} series"
            f" ({self.series_skipped} too short for a baseline):"
            f" {len(self.regressions)} regression(s)"
        ]
        lines.extend("  REGRESSION " + r.describe() for r in self.regressions)
        return "\n".join(lines)


class PerfHistory:
    """An append-only ``BENCH_*.json`` benchmark time-series file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    # -- persistence ----------------------------------------------------

    def load(self) -> List[PerfEntry]:
        """All entries in append order (empty when the file is missing)."""
        if not self.path.exists():
            return []
        with open(self.path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
        version = envelope.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{self.path}: unsupported perf-history format"
                f" {version!r} (expected {_FORMAT_VERSION})"
            )
        return [PerfEntry.from_dict(d) for d in envelope.get("entries", [])]

    def _save(self, entries: Sequence[PerfEntry]) -> None:
        envelope = {
            "format_version": _FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in entries],
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, indent=2, sort_keys=True, default=str)
            handle.write("\n")
        os.replace(tmp, self.path)

    # -- recording ------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        algorithm: str,
        elapsed_seconds: float,
        *,
        execution: Optional[Dict[str, object]] = None,
        counters: Optional[Dict[str, float]] = None,
        label: str = "",
        recorded_at: Optional[float] = None,
    ) -> PerfEntry:
        """Append one run (atomic rewrite) and return the stored entry."""
        entry = PerfEntry(
            fingerprint=str(fingerprint),
            algorithm=str(algorithm),
            elapsed_seconds=float(elapsed_seconds),
            execution=dict(execution or {}),
            counters={str(k): float(v) for k, v in (counters or {}).items()},
            recorded_at=(
                float(recorded_at) if recorded_at is not None else time.time()
            ),
            label=str(label),
        )
        entries = self.load()
        entries.append(entry)
        self._save(entries)
        return entry

    # -- analysis -------------------------------------------------------

    def series(self) -> Dict[Tuple[str, str, str], List[PerfEntry]]:
        """Entries grouped by comparability key, in append order."""
        grouped: Dict[Tuple[str, str, str], List[PerfEntry]] = {}
        for entry in self.load():
            grouped.setdefault(entry.key, []).append(entry)
        return grouped

    def check(
        self,
        threshold: Union[str, float] = DEFAULT_THRESHOLD,
        baseline_window: int = DEFAULT_BASELINE_WINDOW,
        metrics: Optional[Sequence[str]] = None,
    ) -> RegressionReport:
        """Compare the latest run of every series against its baseline.

        ``metrics=None`` checks ``elapsed_seconds`` plus every counter the
        latest entry carries.  A series needs at least two entries; the
        baseline is the median of the up-to-``baseline_window`` entries
        preceding the latest.
        """
        fraction = parse_threshold(threshold)
        if baseline_window < 1:
            raise ValueError("baseline_window must be >= 1")
        report = RegressionReport()
        for key, entries in self.series().items():
            if len(entries) < 2:
                report.series_skipped += 1
                continue
            report.series_checked += 1
            latest = entries[-1]
            window = entries[-1 - baseline_window : -1]
            names = (
                list(metrics)
                if metrics is not None
                else ["elapsed_seconds", *sorted(latest.counters)]
            )
            for name in names:
                latest_value = latest.metric(name)
                if latest_value is None:
                    continue
                baseline_values = [
                    value
                    for value in (e.metric(name) for e in window)
                    if value is not None
                ]
                if not baseline_values:
                    continue
                baseline = statistics.median(baseline_values)
                if latest_value > baseline * (1.0 + fraction):
                    report.regressions.append(
                        Regression(
                            fingerprint=latest.fingerprint,
                            algorithm=latest.algorithm,
                            execution=dict(latest.execution),
                            metric=name,
                            latest=latest_value,
                            baseline=baseline,
                            threshold=fraction,
                        )
                    )
        return report

    def describe(self) -> str:
        """Human-readable per-series summary (``repro perf report``)."""
        grouped = self.series()
        if not grouped:
            return f"{self.path}: no entries"
        lines = [f"{self.path}: {len(grouped)} series"]
        for key in sorted(grouped):
            entries = grouped[key]
            latest = entries[-1]
            latencies = [e.elapsed_seconds for e in entries]
            execution = key[2]
            lines.append(
                f"  {latest.algorithm} [{latest.fingerprint[:12]}]"
                f" {execution}: {len(entries)} run(s),"
                f" latest {latest.elapsed_seconds:.6g}s,"
                f" median {statistics.median(latencies):.6g}s,"
                f" best {min(latencies):.6g}s"
            )
        return "\n".join(lines)
