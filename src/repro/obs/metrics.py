"""Process-wide metrics registry: counters, gauges and histograms.

The paper argues every algorithmic claim through *work counters* — group
comparisons (Eq. 3), record-pair checks (Eq. 4), stopping-rule and MBB
shortcut savings.  This module gives those counters a first-class home: a
lightweight, thread-safe :class:`MetricsRegistry` with Prometheus-style
instruments and exporters, so a long-running engine can expose the same
numbers the benchmarks print, continuously.

Design notes
------------
* **Labels.**  Instruments are declared with a tuple of label *names*
  (``("algorithm",)``); every write supplies label *values* as keyword
  arguments (``counter.inc(3, algorithm="LO")``).  ``labels(...)`` returns a
  bound child that skips label resolution on the hot path.
* **Histograms** use fixed, monotonically increasing bucket upper bounds.
  Two log-scale presets are provided: :data:`DEFAULT_LATENCY_BUCKETS`
  (powers of ten, 1µs … 100s) and :data:`DEFAULT_COUNT_BUCKETS` (powers of
  four, 1 … ~4M) for pair counts.
* **Exporters.**  :meth:`MetricsRegistry.to_prometheus` emits the text
  exposition format; :meth:`MetricsRegistry.as_dict` /
  :meth:`MetricsRegistry.to_json` a JSON document for benchmark payloads.
* **Global default.**  :func:`get_registry` returns the process-global
  registry; tests and scoped collections swap it with
  :func:`use_registry`.  The cheap end-of-run counter flush (once per
  ``compute()``) is always on; *detailed* per-comparison instruments are
  gated behind :func:`enable` / :func:`is_enabled` so the disabled path
  costs a single ``None`` check.
* **Engine counters.**  The persistent-session layer
  (:mod:`repro.engine`) reports through the same registry:
  ``engine_starts_total``, ``engine_attaches_total``,
  ``engine_queries_total{mode=warm|cold}``, ``engine_worker_crashes_total``,
  ``engine_slot_respawns_total``, ``engine_slots_retired_total`` and
  ``engine_serial_fallbacks_total``.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "log_buckets",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable",
    "disable",
    "is_enabled",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-scale bucket upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: 1µs … 100s in decades — wide enough for a single comparison and a full run.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-6, 10.0, 9)

#: 1 … ~4.2M in powers of four — record-pair counts per comparison/run.
DEFAULT_COUNT_BUCKETS = log_buckets(1.0, 4.0, 12)


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Instrument:
    """Shared machinery: name/help/labelnames plus a locked series map."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames},"
                f" got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    def series_keys(self) -> List[Tuple[str, ...]]:
        with self._lock:
            return list(self._series)


class _BoundCounter:
    """Label-resolved fast path for a :class:`Counter`."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "Counter", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._instrument._inc_key(self._key, amount)


class Counter(_Instrument):
    """Monotonically increasing value (e.g. record pairs examined)."""

    kind = "counter"

    def _inc_key(self, key: Tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._series[key] = float(self._series.get(key, 0.0)) + amount

    def inc(self, amount: float = 1.0, **labels) -> None:
        self._inc_key(self._key(labels), amount)

    def labels(self, **labels) -> _BoundCounter:
        return _BoundCounter(self, self._key(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class _BoundGauge:
    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "Gauge", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def set(self, value: float) -> None:
        self._instrument._set_key(self._key, value)

    def inc(self, amount: float = 1.0) -> None:
        self._instrument._add_key(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._instrument._add_key(self._key, -amount)


class Gauge(_Instrument):
    """A value that can go up and down (e.g. pair budget of a dataset)."""

    kind = "gauge"

    def _set_key(self, key: Tuple[str, ...], value: float) -> None:
        with self._lock:
            self._series[key] = float(value)

    def _add_key(self, key: Tuple[str, ...], amount: float) -> None:
        with self._lock:
            self._series[key] = float(self._series.get(key, 0.0)) + amount

    def set(self, value: float, **labels) -> None:
        self._set_key(self._key(labels), value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self._add_key(self._key(labels), amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        self._add_key(self._key(labels), -amount)

    def labels(self, **labels) -> _BoundGauge:
        return _BoundGauge(self, self._key(labels))

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class _BoundHistogram:
    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "Histogram", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def observe(self, value: float) -> None:
        self._instrument._observe_key(self._key, value)


class Histogram(_Instrument):
    """Fixed-bucket distribution (log-scale presets for latencies/counts).

    ``buckets`` are upper bounds with Prometheus ``le`` semantics: an
    observation lands in the first bucket whose bound is ``>= value``; a
    ``+Inf`` bucket is implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("buckets must be non-empty and increasing")
        self.buckets = bounds

    def _observe_key(self, key: Tuple[str, ...], value: float) -> None:
        index = bisect_left(self.buckets, float(value))
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.counts[index] += 1
            series.sum += float(value)
            series.count += 1

    def observe(self, value: float, **labels) -> None:
        self._observe_key(self._key(labels), value)

    def labels(self, **labels) -> _BoundHistogram:
        return _BoundHistogram(self, self._key(labels))

    def snapshot(self, **labels) -> Dict[str, object]:
        """Per-bucket (non-cumulative) counts plus sum/count."""
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None:
                return {"buckets": {}, "sum": 0.0, "count": 0}
            uppers = [*self.buckets, float("inf")]
            return {
                "buckets": dict(zip(uppers, list(series.counts))),
                "sum": series.sum,
                "count": series.count,
            }


class MetricsRegistry:
    """Thread-safe, name-keyed collection of instruments.

    Instrument factories are idempotent: asking twice for the same name
    returns the same object; asking with a conflicting kind or label set
    raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- factories ------------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as"
                        f" {existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_COUNT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def __iter__(self) -> Iterator[_Instrument]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def reset(self) -> None:
        """Clear every series (instrument declarations are kept)."""
        for instrument in self:
            instrument.clear()

    # -- exporters ------------------------------------------------------

    def to_prometheus(self) -> str:
        """Text exposition format (one block per instrument)."""
        lines: List[str] = []
        for instrument in self:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            names = instrument.labelnames
            if isinstance(instrument, Histogram):
                for key in instrument.series_keys():
                    with instrument._lock:
                        series = instrument._series[key]
                        counts = list(series.counts)
                        total, summed = series.count, series.sum
                    cumulative = 0
                    uppers = [*instrument.buckets, float("inf")]
                    for upper, count in zip(uppers, counts):
                        cumulative += count
                        labels = _format_labels(
                            (*names, "le"), (*key, _format_number(upper))
                        )
                        lines.append(
                            f"{instrument.name}_bucket{labels} {cumulative}"
                        )
                    base = _format_labels(names, key)
                    lines.append(
                        f"{instrument.name}_sum{base} {_format_number(summed)}"
                    )
                    lines.append(f"{instrument.name}_count{base} {total}")
            else:
                for key in instrument.series_keys():
                    with instrument._lock:
                        value = instrument._series[key]
                    labels = _format_labels(names, key)
                    lines.append(
                        f"{instrument.name}{labels} {_format_number(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_openmetrics(self) -> str:
        """OpenMetrics 1.0 text exposition.

        Differences from :meth:`to_prometheus`: counter *families* are
        named without the ``_total`` suffix in ``# HELP`` / ``# TYPE``
        (samples keep it), the histogram ``le`` / sample grammar is
        shared, and the output is terminated by the mandatory ``# EOF``
        marker scrapers use to detect truncated exposition.
        """
        lines: List[str] = []
        for instrument in self:
            family = instrument.name
            if instrument.kind == "counter" and family.endswith("_total"):
                family = family[: -len("_total")]
            lines.append(f"# HELP {family} {instrument.help}")
            lines.append(f"# TYPE {family} {instrument.kind}")
            names = instrument.labelnames
            if isinstance(instrument, Histogram):
                for key in instrument.series_keys():
                    with instrument._lock:
                        series = instrument._series[key]
                        counts = list(series.counts)
                        total, summed = series.count, series.sum
                    cumulative = 0
                    uppers = [*instrument.buckets, float("inf")]
                    for upper, count in zip(uppers, counts):
                        cumulative += count
                        labels = _format_labels(
                            (*names, "le"), (*key, _format_number(upper))
                        )
                        lines.append(f"{family}_bucket{labels} {cumulative}")
                    base = _format_labels(names, key)
                    lines.append(
                        f"{family}_sum{base} {_format_number(summed)}"
                    )
                    lines.append(f"{family}_count{base} {total}")
            else:
                suffix = "_total" if instrument.kind == "counter" else ""
                for key in instrument.series_keys():
                    with instrument._lock:
                        value = instrument._series[key]
                    labels = _format_labels(names, key)
                    lines.append(
                        f"{family}{suffix}{labels} {_format_number(value)}"
                    )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of every instrument and series."""
        out: Dict[str, dict] = {}
        for instrument in self:
            series: List[dict] = []
            names = instrument.labelnames
            if isinstance(instrument, Histogram):
                for key in instrument.series_keys():
                    with instrument._lock:
                        raw = instrument._series[key]
                        counts = list(raw.counts)
                        total, summed = raw.count, raw.sum
                    uppers = [*instrument.buckets, float("inf")]
                    series.append(
                        {
                            "labels": dict(zip(names, key)),
                            "buckets": {
                                _format_number(u): c
                                for u, c in zip(uppers, counts)
                            },
                            "sum": summed,
                            "count": total,
                        }
                    )
            else:
                for key in instrument.series_keys():
                    with instrument._lock:
                        value = instrument._series[key]
                    series.append(
                        {"labels": dict(zip(names, key)), "value": value}
                    )
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# process-global default registry + enable flag
# ----------------------------------------------------------------------

_default_registry = MetricsRegistry()
_detailed_enabled = False
_state_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry (returns the previous one)."""
    global _default_registry
    with _state_lock:
        previous, _default_registry = _default_registry, registry
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None):
    """Scope the global registry to ``registry`` (a fresh one by default)."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn on detailed (per-comparison) instrumentation."""
    global _detailed_enabled
    if registry is not None:
        set_registry(registry)
    _detailed_enabled = True
    return get_registry()


def disable() -> None:
    global _detailed_enabled
    _detailed_enabled = False


def is_enabled() -> bool:
    """Whether detailed per-comparison instruments should be recorded."""
    return _detailed_enabled
