"""Background resource profiling: RSS, CPU time, GC pauses, queue depth.

:class:`ResourceSampler` runs a daemon thread that samples the process at
a configurable interval and records into the metrics registry:

* ``process_rss_bytes`` (gauge) — resident set size, read from
  ``/proc/self/statm`` (falls back to ``resource.getrusage`` elsewhere);
* ``process_rss_peak_bytes`` (gauge) — high-water mark seen by this
  sampler;
* ``process_cpu_seconds`` (gauge) — cumulative user+system CPU time
  (``time.process_time``, so it covers all threads of this process);
* ``pool_queue_depth`` (gauge) — whatever the injected ``queue_depth_fn``
  reports, e.g. outstanding chunks of a pooled run;
* ``gc_pause_seconds`` (histogram) + ``gc_collections_total`` (counter,
  labelled by generation) — measured via :data:`gc.callbacks`, so pauses
  are exact per-collection wall times, not samples.

The sampler is strictly opt-in and self-contained: ``start()`` spawns the
thread and registers the GC hook, ``stop()`` (or the context manager, or
``atexit``) joins the thread and unregisters the hook, leaving no global
state behind — the leak test asserts exactly that.

The module also provides :func:`profile_phase`, an opt-in ``cProfile``
context manager the algorithm layer wraps around phases when
``REPRO_PROFILE_DIR`` is set; each phase dumps a ``pstats`` file that
``snakeviz``/``flameprof``-style tools (or ``pstats`` itself) can render
into flamegraphs.
"""

from __future__ import annotations

import atexit
import gc
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional

from . import metrics as obs_metrics

__all__ = [
    "ResourceSampler",
    "read_rss_bytes",
    "profile_phase",
    "PROFILE_DIR_ENV_VAR",
    "GC_PAUSE_BUCKETS",
]

#: GC pause buckets: 10µs … 1s in decades.
GC_PAUSE_BUCKETS = obs_metrics.log_buckets(1e-5, 10.0, 6)

#: Setting this to a directory opts algorithm phases into cProfile dumps.
PROFILE_DIR_ENV_VAR = "REPRO_PROFILE_DIR"

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """Current resident set size in bytes (0 if it cannot be determined)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-Linux fallback
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(rss_kb) * 1024
    except Exception:  # pragma: no cover
        return 0


class ResourceSampler:
    """Daemon thread sampling process resources into the metrics registry.

    Parameters
    ----------
    interval:
        Seconds between samples (default 50ms; the smoke-test overhead of
        one ``/proc`` read + three gauge sets per tick is negligible).
    registry:
        Metrics registry to record into; defaults to the process-global
        one *at start time*, so ``use_registry`` scoping works.
    queue_depth_fn:
        Optional zero-argument callable polled each tick into the
        ``pool_queue_depth`` gauge.  Exceptions are swallowed (the pool
        may be gone between ticks).
    """

    def __init__(
        self,
        interval: float = 0.05,
        registry: Optional[obs_metrics.MetricsRegistry] = None,
        queue_depth_fn: Optional[Callable[[], float]] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self._registry = registry
        self._queue_depth_fn = queue_depth_fn
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._gc_pause_started: Optional[float] = None
        self._gc_callback_installed = False
        self.samples_taken = 0
        self.gc_pauses_observed = 0
        self.peak_rss_bytes = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        if self.running:
            raise RuntimeError("sampler already running")
        # Per-start state: a restarted sampler reports *this* run's
        # high-water mark, not a stale peak carried over from the last
        # start/stop cycle (and never a half-measured GC pause).
        self.peak_rss_bytes = 0
        self._gc_pause_started = None
        registry = (
            self._registry
            if self._registry is not None
            else obs_metrics.get_registry()
        )
        self._rss_gauge = registry.gauge(
            "process_rss_bytes", "Resident set size of this process"
        )
        self._rss_peak_gauge = registry.gauge(
            "process_rss_peak_bytes", "Peak RSS seen by the resource sampler"
        )
        self._cpu_gauge = registry.gauge(
            "process_cpu_seconds",
            "Cumulative user+system CPU time of this process",
        )
        self._queue_gauge = registry.gauge(
            "pool_queue_depth", "Outstanding work items of the active pool"
        )
        self._gc_histogram = registry.histogram(
            "gc_pause_seconds",
            "Stop-the-world garbage collection pause",
            buckets=GC_PAUSE_BUCKETS,
        )
        self._gc_counter = registry.counter(
            "gc_collections_total",
            "Garbage collections observed",
            ("generation",),
        )
        self._stop_event.clear()
        if not self._gc_callback_installed:
            gc.callbacks.append(self._on_gc)
            self._gc_callback_installed = True
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        self._atexit = atexit.register(self.stop)
        return self

    def stop(self) -> None:
        """Stop sampling; joins the thread and removes the GC hook."""
        self._stop_event.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if self._gc_callback_installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._gc_callback_installed = False
        try:
            atexit.unregister(self.stop)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __enter__(self) -> "ResourceSampler":
        if not self.running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling -------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample (also used directly by tests)."""
        rss = read_rss_bytes()
        if rss:
            self._rss_gauge.set(rss)
            if rss > self.peak_rss_bytes:
                self.peak_rss_bytes = rss
                self._rss_peak_gauge.set(rss)
        self._cpu_gauge.set(time.process_time())
        if self._queue_depth_fn is not None:
            try:
                self._queue_gauge.set(float(self._queue_depth_fn()))
            except Exception:
                pass
        self.samples_taken += 1

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample_once()

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_pause_started = time.perf_counter()
        elif phase == "stop" and self._gc_pause_started is not None:
            pause = time.perf_counter() - self._gc_pause_started
            self._gc_pause_started = None
            self._gc_histogram.observe(pause)
            self._gc_counter.inc(
                1, generation=str(info.get("generation", "?"))
            )
            self.gc_pauses_observed += 1


# ----------------------------------------------------------------------
# opt-in per-phase cProfile hook
# ----------------------------------------------------------------------


def _profile_dir() -> Optional[Path]:
    value = os.environ.get(PROFILE_DIR_ENV_VAR, "").strip()
    return Path(value) if value else None


@contextmanager
def profile_phase(name: str, out_dir: Optional[Path] = None):
    """Profile a block with ``cProfile`` when profiling is opted in.

    ``out_dir`` defaults to ``$REPRO_PROFILE_DIR``; when neither is set
    the block runs untouched (zero overhead).  The dump lands in
    ``<out_dir>/<name>.<pid>.pstats`` — one file per phase per process,
    loadable with :mod:`pstats` or any flamegraph converter.
    """
    directory = out_dir if out_dir is not None else _profile_dir()
    if directory is None:
        yield None
        return
    import cProfile

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        safe = name.replace("/", "_").replace(" ", "_")
        profiler.dump_stats(str(directory / f"{safe}.{os.getpid()}.pstats"))
