"""Progress / heartbeat callbacks for long-running skyline computations.

The anytime engine (:mod:`repro.core.anytime`) refines group verdicts in
record-pair increments; the worst case is bounded by the *pair budget* of
:func:`repro.core.diagnostics.dataset_statistics`.  This module turns those
two numbers into throttled heartbeat events with an ETA, for CLIs and
services that want to show "42/100 groups decided, ~3s left" instead of a
silent spinner.

Usage::

    reporter = ProgressReporter(lambda e: print(e.describe()), min_interval=0.5)
    engine.run(progress=reporter)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "eta_from_chunks",
    "eta_from_pair_budget",
]


def eta_from_pair_budget(
    pairs_examined: int, pair_budget: Optional[int], elapsed_seconds: float
) -> Optional[float]:
    """Remaining seconds, extrapolated from the pair-examination rate.

    Returns ``None`` when no budget is known or no work happened yet.
    """
    if not pair_budget or pairs_examined <= 0 or elapsed_seconds <= 0:
        return None
    rate = pairs_examined / elapsed_seconds
    remaining = max(0, pair_budget - pairs_examined)
    return remaining / rate


def eta_from_chunks(
    chunks_done: int, chunks_total: Optional[int], elapsed_seconds: float
) -> Optional[float]:
    """Remaining seconds, extrapolated from the pool's chunk-claim rate.

    The right estimator for pooled runs: the serial pair budget wildly
    overestimates when ``workers=N`` chew through pairs N-at-a-time (and
    the stealing scheduler makes per-worker pair counts meaningless),
    while chunks claimed from the shared ledger track real pool
    throughput whatever the schedule looks like.
    """
    if not chunks_total or chunks_done <= 0 or elapsed_seconds <= 0:
        return None
    rate = chunks_done / elapsed_seconds
    remaining = max(0, chunks_total - chunks_done)
    return remaining / rate


@dataclass
class ProgressEvent:
    """One heartbeat: how far along a computation is."""

    phase: str
    done: int
    total: int
    pairs_examined: int = 0
    pair_budget: Optional[int] = None
    elapsed_seconds: float = 0.0
    eta_seconds: Optional[float] = None
    #: Pooled-run telemetry: chunks claimed / total chunks / chunks that
    #: ran on a stealing slot.  ``chunks_total`` set means a pool is
    #: driving this run and the ETA came from the chunk rate.
    chunks_done: int = 0
    chunks_total: Optional[int] = None
    chunks_stolen: int = 0

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def finished(self) -> bool:
        return self.total > 0 and self.done >= self.total

    def describe(self) -> str:
        parts = [f"{self.phase or 'progress'}: {self.done}/{self.total}"]
        if self.chunks_total:
            chunk = f"{self.chunks_done}/{self.chunks_total} chunks"
            if self.chunks_stolen:
                chunk += f" ({self.chunks_stolen} stolen)"
            parts.append(chunk)
        if self.pairs_examined:
            parts.append(f"{self.pairs_examined} pairs")
        parts.append(f"{self.elapsed_seconds:.1f}s elapsed")
        if self.eta_seconds is not None:
            parts.append(f"~{self.eta_seconds:.1f}s left")
        return ", ".join(parts)


class ProgressReporter:
    """Wraps a callback with throttling and ETA computation.

    Parameters
    ----------
    callback:
        Called with a :class:`ProgressEvent` at most every ``min_interval``
        seconds (final/forced events always go through).
    min_interval:
        Heartbeat floor in seconds; ``0`` emits on every update.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        callback: Callable[[ProgressEvent], None],
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self._callback = callback
        self._min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_emit: Optional[float] = None
        self._finished_emitted = False
        self.events_emitted = 0

    def update(
        self,
        done: int,
        total: int,
        pairs_examined: int = 0,
        pair_budget: Optional[int] = None,
        phase: str = "",
        force: bool = False,
        chunks_done: int = 0,
        chunks_total: Optional[int] = None,
        chunks_stolen: int = 0,
    ) -> Optional[ProgressEvent]:
        """Maybe emit a heartbeat; returns the event if one was emitted.

        The "finished" heartbeat (``done >= total``) bypasses throttling but
        is emitted exactly once: any further post-completion update — even a
        forced one — is suppressed, so callers that poll after completion do
        not re-announce the finish.

        When ``chunks_total`` is given (pooled runs), the ETA comes from
        :func:`eta_from_chunks` — the serial pair budget is not a
        meaningful yardstick for a ``workers=N`` pool.
        """
        now = self._clock()
        finished = total > 0 and done >= total
        if finished and self._finished_emitted:
            return None
        if not (force or finished):
            if (
                self._last_emit is not None
                and now - self._last_emit < self._min_interval
            ):
                return None
        elapsed = now - self._started
        if chunks_total:
            eta = eta_from_chunks(chunks_done, chunks_total, elapsed)
        else:
            eta = eta_from_pair_budget(pairs_examined, pair_budget, elapsed)
        event = ProgressEvent(
            phase=phase,
            done=done,
            total=total,
            pairs_examined=pairs_examined,
            pair_budget=pair_budget,
            elapsed_seconds=elapsed,
            eta_seconds=eta,
            chunks_done=chunks_done,
            chunks_total=chunks_total,
            chunks_stolen=chunks_stolen,
        )
        self._last_emit = now
        if finished:
            self._finished_emitted = True
        self.events_emitted += 1
        self._callback(event)
        return event
