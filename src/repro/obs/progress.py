"""Progress / heartbeat callbacks for long-running skyline computations.

The anytime engine (:mod:`repro.core.anytime`) refines group verdicts in
record-pair increments; the worst case is bounded by the *pair budget* of
:func:`repro.core.diagnostics.dataset_statistics`.  This module turns those
two numbers into throttled heartbeat events with an ETA, for CLIs and
services that want to show "42/100 groups decided, ~3s left" instead of a
silent spinner.

Usage::

    reporter = ProgressReporter(lambda e: print(e.describe()), min_interval=0.5)
    engine.run(progress=reporter)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["ProgressEvent", "ProgressReporter", "eta_from_pair_budget"]


def eta_from_pair_budget(
    pairs_examined: int, pair_budget: Optional[int], elapsed_seconds: float
) -> Optional[float]:
    """Remaining seconds, extrapolated from the pair-examination rate.

    Returns ``None`` when no budget is known or no work happened yet.
    """
    if not pair_budget or pairs_examined <= 0 or elapsed_seconds <= 0:
        return None
    rate = pairs_examined / elapsed_seconds
    remaining = max(0, pair_budget - pairs_examined)
    return remaining / rate


@dataclass
class ProgressEvent:
    """One heartbeat: how far along a computation is."""

    phase: str
    done: int
    total: int
    pairs_examined: int = 0
    pair_budget: Optional[int] = None
    elapsed_seconds: float = 0.0
    eta_seconds: Optional[float] = None

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def finished(self) -> bool:
        return self.total > 0 and self.done >= self.total

    def describe(self) -> str:
        parts = [f"{self.phase or 'progress'}: {self.done}/{self.total}"]
        if self.pairs_examined:
            parts.append(f"{self.pairs_examined} pairs")
        parts.append(f"{self.elapsed_seconds:.1f}s elapsed")
        if self.eta_seconds is not None:
            parts.append(f"~{self.eta_seconds:.1f}s left")
        return ", ".join(parts)


class ProgressReporter:
    """Wraps a callback with throttling and ETA computation.

    Parameters
    ----------
    callback:
        Called with a :class:`ProgressEvent` at most every ``min_interval``
        seconds (final/forced events always go through).
    min_interval:
        Heartbeat floor in seconds; ``0`` emits on every update.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        callback: Callable[[ProgressEvent], None],
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if min_interval < 0:
            raise ValueError("min_interval must be >= 0")
        self._callback = callback
        self._min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_emit: Optional[float] = None
        self._finished_emitted = False
        self.events_emitted = 0

    def update(
        self,
        done: int,
        total: int,
        pairs_examined: int = 0,
        pair_budget: Optional[int] = None,
        phase: str = "",
        force: bool = False,
    ) -> Optional[ProgressEvent]:
        """Maybe emit a heartbeat; returns the event if one was emitted.

        The "finished" heartbeat (``done >= total``) bypasses throttling but
        is emitted exactly once: any further post-completion update — even a
        forced one — is suppressed, so callers that poll after completion do
        not re-announce the finish.
        """
        now = self._clock()
        finished = total > 0 and done >= total
        if finished and self._finished_emitted:
            return None
        if not (force or finished):
            if (
                self._last_emit is not None
                and now - self._last_emit < self._min_interval
            ):
                return None
        elapsed = now - self._started
        event = ProgressEvent(
            phase=phase,
            done=done,
            total=total,
            pairs_examined=pairs_examined,
            pair_budget=pair_budget,
            elapsed_seconds=elapsed,
            eta_seconds=eta_from_pair_budget(
                pairs_examined, pair_budget, elapsed
            ),
        )
        self._last_emit = now
        if finished:
            self._finished_emitted = True
        self.events_emitted += 1
        self._callback(event)
        return event
