"""Structured JSONL run logs correlated with trace IDs.

While metrics aggregate and traces nest, the *run log* is the flat,
append-only record of what happened when: one JSON object per line, one
line per event, flushed immediately so a crashed or timed-out run still
leaves its history on disk.  Events carry the ``trace_id``/``span_id`` of
the span that was open when they were emitted, so a log line can be joined
back to the exact subtree of the trace it belongs to.

Event schema
------------
Every line has at least::

    {"ts": <unix seconds>, "event": "<name>", "pid": <int>}

plus ``trace_id``/``span_id`` when tracing is enabled, plus event-specific
fields.  Events emitted by the engine:

``run_start`` / ``run_end`` / ``run_error``
    One aggregate-skyline ``compute()`` (algorithm, groups, gamma;
    end adds elapsed/survivors/counters; error adds the traceback).
``phase_start`` / ``phase_end``
    A named phase inside a run (``harness.figure``, ``bench.run``, ...).
``pool_start`` / ``pool_end`` / ``pool_timeout``
    Worker-pool lifecycle (workers, start method, scheduler, chunks,
    attempt).  Every ``pool_start`` is closed by exactly one of
    ``pool_end``, ``pool_timeout`` or ``pool_error``.
``pool_error`` / ``chunk_retry`` / ``pool_fallback``
    Fault tolerance: a worker crash or worker traceback (exception type,
    message, crashed pids/signals, undelivered chunk count), a retry of
    the lost chunks on a fresh pool (attempt, chunk count, backoff), and
    the serial-fallback completion after retries are exhausted.
``cache_hit`` / ``cache_miss``
    Derived-artifact cache traffic (kind).
``api_call``
    One public-API invocation (``aggregate_skyline``: algorithm, groups,
    gamma, execution).
``engine_start`` / ``engine_end``
    A :class:`repro.engine.SkylineEngine` persistent pool coming up
    (workers, start method, shm, pids, respawn budget) and the session
    summary at close (queries, warm queries, attaches, slot respawns).
``attach``
    A dataset made resident in an engine (token prefix, groups, records,
    via_shm, warm pre-pinning, elapsed).
``query_start`` / ``query_end``
    One engine query (algorithm, gamma, groups, warm/cold, dims; end
    adds survivors and elapsed, or the error payload on failure).
``slot_respawn``
    The engine replaced exactly one dead worker slot (slot, old/new pid,
    exitcode/signal, respawn count vs budget) — surviving slots keep
    their pids and pinned data.
``engine_teardown_error``
    The engine's GC safety net failed to release the pool (possible
    leaked shm segments or worker slots) — previously swallowed
    silently; also bumps ``engine_teardown_errors_total``.
``net_accept`` / ``net_request`` / ``net_response`` / ``net_timeout``
    The network front-end (:mod:`repro.net`): a TCP connection accepted
    (conn, peer), one request frame (conn, id, op), its response frame
    (status ``ok`` or the error code, elapsed), and a request whose
    ``deadline_ms`` expired while waiting or executing.  ``net_drain``
    / ``net_shutdown`` bracket graceful shutdown.
``error``
    Any caught exception worth recording, with ``traceback``.

Usage
-----
The process-global run log defaults to a no-op whose :meth:`RunLog.emit`
is a single attribute check.  Enable it with::

    from repro.obs import runlog
    runlog.enable_runlog("run.jsonl")     # or RunLog(path) + set_runlog

or from the CLI with ``--log-json PATH``.  :func:`read_events` reads a
log back, tolerating a partially written trailing line.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
import traceback as traceback_module
from contextlib import contextmanager
from pathlib import Path
from typing import IO, List, Optional, Union

from . import tracing as obs_tracing

__all__ = [
    "RunLog",
    "NoopRunLog",
    "NOOP_RUNLOG",
    "get_runlog",
    "set_runlog",
    "use_runlog",
    "enable_runlog",
    "disable_runlog",
    "emit",
    "phase",
    "emit_error",
    "read_events",
]


def _json_default(value):
    """Last-resort JSON coercion so emit() never raises on odd values."""
    try:
        return str(value)
    except Exception:  # pragma: no cover - pathological __str__
        return "<unserializable>"


class RunLog:
    """Append-only JSONL event log with immediate flush.

    Parameters
    ----------
    target:
        A path (opened in append mode) or an already-open text stream.
    clock:
        Injectable wall clock (tests).

    Durability: each event is one ``write`` + ``flush`` under a lock, and
    the handle is closed by the context-manager protocol *and* an
    ``atexit`` hook, so events survive crashed or killed runs; readers
    use :func:`read_events`, which skips a torn trailing line.
    """

    enabled = True

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        clock=time.time,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        if hasattr(target, "write"):
            self.path: Optional[Path] = None
            self._handle = target
            self._owns_handle = False
        else:
            self.path = Path(target)
            self._handle = open(self.path, "a", encoding="utf-8")
            self._owns_handle = True
        self.events_emitted = 0
        self._atexit = atexit.register(self.close)

    # ------------------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Write one event line (timestamp, trace correlation, fields)."""
        record = {
            "ts": self._clock(),
            "event": str(event),
            "pid": os.getpid(),
        }
        context = obs_tracing.current_trace_context()
        if context is not None:
            record["trace_id"] = context.trace_id
            if context.span_id is not None:
                record["span_id"] = context.span_id
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=_json_default)
        with self._lock:
            if getattr(self._handle, "closed", False):
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self.events_emitted += 1

    # ------------------------------------------------------------------

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        with self._lock:
            if self._owns_handle and not getattr(self._handle, "closed", True):
                self._handle.close()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


class NoopRunLog:
    """Disabled run log; ``emit`` costs one attribute lookup at call sites."""

    enabled = False
    path = None
    events_emitted = 0

    def emit(self, event: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NoopRunLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_RUNLOG = NoopRunLog()


# ----------------------------------------------------------------------
# process-global run log
# ----------------------------------------------------------------------

_runlog = NOOP_RUNLOG
_state_lock = threading.Lock()


def get_runlog():
    """The process-global run log (no-op unless enabled)."""
    return _runlog


def set_runlog(runlog) -> object:
    """Replace the global run log (returns the previous one)."""
    global _runlog
    with _state_lock:
        previous, _runlog = _runlog, runlog
    return previous


def enable_runlog(target: Union[str, Path, IO[str]]) -> RunLog:
    """Install (and return) a recording run log as the global one."""
    runlog = RunLog(target)
    set_runlog(runlog)
    return runlog


def disable_runlog() -> None:
    """Back to the no-op run log (closing the recording one, if any)."""
    previous = set_runlog(NOOP_RUNLOG)
    if previous is not NOOP_RUNLOG:
        previous.close()


@contextmanager
def use_runlog(runlog):
    """Scope the global run log to ``runlog``."""
    previous = set_runlog(runlog)
    try:
        yield runlog
    finally:
        set_runlog(previous)


# ----------------------------------------------------------------------
# convenience emitters used by the engine
# ----------------------------------------------------------------------


def emit(event: str, **fields) -> None:
    """Emit on the global run log (no-op when disabled)."""
    _runlog.emit(event, **fields)


@contextmanager
def phase(name: str, **fields):
    """Emit ``phase_start``/``phase_end`` around a block (errors recorded)."""
    log = _runlog
    if not log.enabled:
        yield
        return
    log.emit("phase_start", phase=name, **fields)
    started = time.perf_counter()
    try:
        yield
    except BaseException as exc:
        log.emit(
            "phase_end",
            phase=name,
            elapsed_seconds=time.perf_counter() - started,
            error=type(exc).__name__,
            **fields,
        )
        raise
    log.emit(
        "phase_end",
        phase=name,
        elapsed_seconds=time.perf_counter() - started,
        **fields,
    )


def emit_error(event: str, exc: BaseException, **fields) -> None:
    """Emit an error event carrying the exception type and traceback."""
    if not _runlog.enabled:
        return
    _runlog.emit(
        event,
        error=type(exc).__name__,
        message=str(exc),
        traceback="".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        ),
        **fields,
    )


def read_events(path: Union[str, Path]) -> List[dict]:
    """Read a run log back (partial trailing lines are skipped)."""
    return obs_tracing.read_jsonl(path)
