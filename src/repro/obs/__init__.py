"""repro.obs — observability substrate for the skyline engine.

Three pillars, threaded through every engine layer:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` with
  ``Counter`` / ``Gauge`` / ``Histogram`` instruments, labels, and
  Prometheus / JSON exporters.  Every ``compute()`` flushes its
  end-of-run :class:`~repro.core.result.AlgorithmStats` counters into the
  process-global registry; detailed per-comparison instruments switch on
  with :func:`repro.obs.metrics.enable`.
* :mod:`repro.obs.tracing` — span-based tracing with nesting, attributes,
  events, ring-buffer / JSONL sinks and a tree renderer.  Disabled by
  default via a shared no-op tracer, enabled with
  :func:`repro.obs.tracing.enable_tracing`.
* :mod:`repro.obs.progress` — throttled heartbeat callbacks with an ETA
  extrapolated from the dataset's record-pair budget (serial) or the
  pool's chunk-claim telemetry (parallel), consumed by the anytime
  engine and the CLI.

Three more pillars arrived with tracing v2:

* :mod:`repro.obs.runlog` — structured JSONL run logs (run/phase/pool/
  cache/error events) correlated with trace IDs.
* :mod:`repro.obs.sampler` — a background resource sampler (RSS, CPU
  time, GC pauses, pool-queue depth) plus an opt-in per-phase cProfile
  hook.
* :mod:`repro.obs.perfhistory` — append-only ``BENCH_*.json`` benchmark
  time series with rolling-baseline regression detection, driving the
  ``repro perf`` CLI.

See ``docs/observability.md`` for the full guide.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    get_registry,
    log_buckets,
    set_registry,
    use_registry,
)
from .metrics import enable as enable_metrics
from .metrics import disable as disable_metrics
from .metrics import is_enabled as metrics_enabled
from .perfhistory import PerfHistory, RegressionReport
from .progress import (
    ProgressEvent,
    ProgressReporter,
    eta_from_chunks,
    eta_from_pair_budget,
)
from .runlog import (
    NOOP_RUNLOG,
    RunLog,
    disable_runlog,
    enable_runlog,
    get_runlog,
    set_runlog,
    use_runlog,
)
from .sampler import ResourceSampler, profile_phase
from .tracing import (
    InMemorySink,
    JsonlSink,
    NOOP_TRACER,
    Span,
    TraceContext,
    Tracer,
    current_trace_context,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_span_id,
    new_trace_id,
    read_jsonl,
    render_trace,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "log_buckets",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "ProgressEvent",
    "ProgressReporter",
    "eta_from_chunks",
    "eta_from_pair_budget",
    "InMemorySink",
    "JsonlSink",
    "NOOP_TRACER",
    "Span",
    "TraceContext",
    "Tracer",
    "current_trace_context",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "new_span_id",
    "new_trace_id",
    "read_jsonl",
    "render_trace",
    "set_tracer",
    "use_tracer",
    "NOOP_RUNLOG",
    "RunLog",
    "disable_runlog",
    "enable_runlog",
    "get_runlog",
    "set_runlog",
    "use_runlog",
    "ResourceSampler",
    "profile_phase",
    "PerfHistory",
    "RegressionReport",
]
