"""repro — aggregate skyline queries on grouped data.

A from-scratch reproduction of Magnani & Assent, *From Stars to Galaxies:
skyline queries on aggregate data* (EDBT 2013): the γ-dominance aggregate
skyline operator, the NL/TR/SI/IN/LO algorithms with the paper's internal
and external optimisations, a direct-SQL baseline, plus the substrates the
evaluation needs (relational engine with a SKYLINE OF query dialect, R-tree
and grid spatial indexes, synthetic and NBA-style data generators, and an
experiment harness that regenerates every figure of the paper).

Entry points: :class:`SkylineEngine` is the session API — attach a dataset
to a persistent worker pool once, then run many queries warm;
:func:`aggregate_skyline` is the one-shot convenience wrapper over an
ephemeral session.
"""

from .core import (
    AnytimeAggregateSkyline,
    GroupStatus,
    IncrementalAggregateSkyline,
    compute_gamma_profile,
    approximate_aggregate_skyline,
    dataset_statistics,
    domination_counts,
    record_contributions,
    removal_impact,
    skyline_layers,
    explain,
    skyline_cube,
    suggest_algorithm,
    partitioned_aggregate_skyline,
    representative_skyline,
    top_k_dominating_groups,
    weighted_aggregate_skyline,
    weighted_dominance_probability,
    AggregateSkylineResult,
    AlgorithmStats,
    BoundingBox,
    ComparisonOutcome,
    Direction,
    DominanceMatrix,
    ExecutionConfig,
    GammaProfile,
    GammaThresholds,
    Group,
    GroupComparator,
    GroupedDataset,
    aggregate_skyline,
    aggregate_skyline_from_records,
    dominance_probability,
    dominance_sign,
    dominates,
    gamma_bar,
    gamma_dominates,
    gamma_profile,
    skyline,
    skyline_mask,
)
from .core.algorithms import ALGORITHMS, make_algorithm
from .engine import (
    DatasetHandle,
    EngineClosedError,
    EngineStats,
    SkylineEngine,
)
from .plan import PlanDecision, explain_dataset, render_plan

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SkylineEngine",
    "DatasetHandle",
    "EngineStats",
    "EngineClosedError",
    "aggregate_skyline",
    "aggregate_skyline_from_records",
    "gamma_profile",
    "GammaProfile",
    "GroupedDataset",
    "Group",
    "BoundingBox",
    "Direction",
    "dominates",
    "dominance_sign",
    "dominance_probability",
    "gamma_dominates",
    "gamma_bar",
    "GammaThresholds",
    "DominanceMatrix",
    "GroupComparator",
    "ComparisonOutcome",
    "AggregateSkylineResult",
    "AlgorithmStats",
    "skyline",
    "skyline_mask",
    "ALGORITHMS",
    "make_algorithm",
    "ExecutionConfig",
    "IncrementalAggregateSkyline",
    "compute_gamma_profile",
    "AnytimeAggregateSkyline",
    "GroupStatus",
    "partitioned_aggregate_skyline",
    "domination_counts",
    "top_k_dominating_groups",
    "representative_skyline",
    "explain",
    "weighted_aggregate_skyline",
    "weighted_dominance_probability",
    "skyline_cube",
    "dataset_statistics",
    "suggest_algorithm",
    "record_contributions",
    "removal_impact",
    "approximate_aggregate_skyline",
    "skyline_layers",
    "PlanDecision",
    "explain_dataset",
    "render_plan",
]
