"""Command-line interface: ``aggskyline`` (or ``python -m repro``).

Subcommands
-----------
``query``      Run a SKYLINE-extended SQL query over CSV tables.
``skyline``    Aggregate skyline of a CSV without writing SQL.
``rank``       Rank groups by the smallest gamma admitting them.
``stats``      Dataset shape statistics + algorithm suggestion.
``shell``      Interactive SQL shell (DDL/DML + SKYLINE queries).
``generate``   Emit a synthetic grouped workload as CSV.
``nba``        Emit the synthetic NBA player-season table as CSV.
``experiment`` Regenerate one of the paper's figures/tables.
``compare``    Diff two saved benchmark result files (wall-clock *and*
               work-counter deltas).
``metrics``    Dump the process metrics registry (Prometheus, OpenMetrics
               or JSON).
``perf``       Benchmark time series: ``record`` a run into a
               ``BENCH_*.json`` file, ``report`` its series, ``check`` the
               latest runs against a rolling baseline.

Observability flags (``query``, ``skyline``, ``experiment``)
------------------------------------------------------------
``--trace[=FILE]``
    Record per-phase spans.  Bare ``--trace`` prints a human-readable span
    tree after the result; ``--trace=trace.jsonl`` appends one JSON span
    tree per root span instead.  (Use the ``=`` form for files — argparse
    would otherwise swallow the next positional argument.)
``--metrics[=FILE]``
    Collect the metrics registry for this invocation.  ``--metrics`` or
    ``--metrics -`` prints Prometheus text exposition; ``--metrics=m.json``
    writes JSON, any other path writes Prometheus text.
``--log-json PATH``
    Append structured JSONL run-log events (run/phase/pool/cache/error,
    correlated with trace IDs when ``--trace`` is also on) to ``PATH``.
``--progress`` (``skyline`` only)
    Heartbeat lines on stderr: the anytime engine with a pair-budget ETA
    for serial runs, or — with ``--execution workers=N`` — the pooled
    algorithm with a chunk-claim ETA.

Examples::

    aggskyline generate --records 2000 --dims 3 --out data.csv
    aggskyline skyline --csv data.csv --group-by group \
        --of a0:max,a1:max,a2:max --gamma 0.5 --algorithm LO
    aggskyline skyline --csv data.csv --group-by group --of a0:max \
        --trace --metrics -
    aggskyline query --table movies=movies.csv \
        "SELECT director FROM movies GROUP BY director SKYLINE OF pop MAX, qual MAX"
    aggskyline experiment fig10 --scale smoke
    aggskyline metrics --demo --format prometheus
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import obs
from .core.api import aggregate_skyline
from .core.dominance import Direction
from .core.execution import ExecutionConfig
from .data.nba import nba_table
from .data.synthetic import SyntheticSpec, generate_grouped
from .data.workloads import load_workload, workload_names
from .obs.perfhistory import DEFAULT_BASELINE_WINDOW
from .harness.experiments import FIGURES, SCALES, run_figure
from .query.executor import execute
from .relational.csvio import load_csv, save_csv
from .relational.operators import grouped_dataset_from_table
from .relational.table import Table

__all__ = ["main", "build_parser"]


def _add_obs_flags(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--trace",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="record spans; bare flag prints a tree, --trace=FILE writes"
        " JSONL (use the = form for files)",
    )
    subparser.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="collect metrics; '-' prints Prometheus text, *.json writes"
        " JSON, other paths write Prometheus text",
    )
    subparser.add_argument(
        "--log-json",
        dest="log_json",
        default=None,
        metavar="PATH",
        help="append structured JSONL run-log events to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aggskyline",
        description="Aggregate skyline queries (EDBT 2013 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run a SKYLINE SQL query")
    _add_obs_flags(query)
    query.add_argument("sql", help="the query text")
    query.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSV",
        help="bind a table name to a CSV file (repeatable)",
    )
    query.add_argument("--max-rows", type=int, default=None)
    query.add_argument(
        "--execution",
        default=None,
        metavar="SPEC",
        help="execution config as 'key=value,...' (e.g."
        " 'workers=4,scheduler=stealing,on_failure=retry'); applies to"
        " the pooled USING ALGORITHM engines (PAR, IN, LO)",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the plan tree (with optimizer cost estimates) instead"
        " of executing; same as prefixing the query with EXPLAIN",
    )

    sky = commands.add_parser("skyline", help="aggregate skyline of a CSV")
    sky.add_argument("--csv", required=True, help="input CSV file")
    sky.add_argument(
        "--group-by", required=True, help="comma-separated grouping columns"
    )
    sky.add_argument(
        "--of",
        required=True,
        help="skyline dimensions, e.g. 'pop:max,qual:min'",
    )
    sky.add_argument("--gamma", type=float, default=0.5)
    sky.add_argument("--algorithm", default="LO")
    sky.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="compute on a process pool of N workers (forces the PAR"
        " algorithm; 1 runs the same kernel in-process; deprecated in"
        " favour of --execution workers=N)",
    )
    sky.add_argument(
        "--execution",
        default=None,
        metavar="SPEC",
        help="execution config as 'key=value,...' (e.g."
        " 'workers=4,scheduler=stealing,on_failure=serial'); applies"
        " to the pooled algorithms (PAR, IN, LO)",
    )
    sky.add_argument(
        "--progress",
        action="store_true",
        help="run the anytime engine with heartbeat lines on stderr",
    )
    sky.add_argument(
        "--explain",
        action="store_true",
        help="print the plan tree (with optimizer cost estimates) instead"
        " of computing the skyline",
    )
    _add_obs_flags(sky)

    rank = commands.add_parser(
        "rank", help="rank groups by minimal admitting gamma"
    )
    rank.add_argument("--csv", required=True, help="input CSV file")
    rank.add_argument(
        "--group-by", required=True, help="comma-separated grouping columns"
    )
    rank.add_argument(
        "--of",
        required=True,
        help="skyline dimensions, e.g. 'pop:max,qual:min'",
    )
    rank.add_argument("--limit", type=int, default=None)

    gen = commands.add_parser("generate", help="synthetic grouped CSV")
    gen.add_argument("--records", type=int, default=10_000)
    gen.add_argument("--dims", type=int, default=5)
    gen.add_argument("--group-size", type=int, default=100)
    gen.add_argument(
        "--distribution",
        default="independent",
        choices=("independent", "correlated", "anticorrelated"),
    )
    gen.add_argument("--spread", type=float, default=0.2)
    gen.add_argument(
        "--sizes", default="uniform", choices=("uniform", "zipf")
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True)

    nba = commands.add_parser("nba", help="synthetic NBA table as CSV")
    nba.add_argument("--rows", type=int, default=15_000)
    nba.add_argument("--seed", type=int, default=7)
    nba.add_argument("--out", required=True)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper figure"
    )
    experiment.add_argument("figure", choices=sorted(FIGURES))
    experiment.add_argument(
        "--scale", default="small", choices=sorted(SCALES)
    )
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool size for worker-aware figures (e.g. 'parallel');"
        " other figures ignore it",
    )
    _add_obs_flags(experiment)

    metrics = commands.add_parser(
        "metrics", help="dump the process metrics registry"
    )
    metrics.add_argument(
        "--format",
        dest="format",
        default="prometheus",
        choices=("prometheus", "openmetrics", "json"),
    )
    metrics.add_argument(
        "--demo",
        action="store_true",
        help="run a small synthetic workload first so the dump is non-empty",
    )
    metrics.add_argument(
        "--out", default="-", help="output path ('-' for stdout)"
    )

    compare = commands.add_parser(
        "compare", help="compare two saved benchmark result files"
    )
    compare.add_argument("baseline", help="JSON results (before)")
    compare.add_argument("contender", help="JSON results (after)")

    perf = commands.add_parser(
        "perf", help="benchmark time series with regression checking"
    )
    perf_commands = perf.add_subparsers(dest="perf_command", required=True)

    def _add_history(sub):
        sub.add_argument(
            "--history",
            default="BENCH_local.json",
            metavar="FILE",
            help="benchmark time-series file (default: BENCH_local.json)",
        )

    record = perf_commands.add_parser(
        "record", help="benchmark a workload and append an entry"
    )
    _add_history(record)
    record.add_argument(
        "--workload",
        default="zipf-heavy",
        choices=workload_names(),
        help="named synthetic workload to benchmark",
    )
    record.add_argument(
        "--scale", type=float, default=0.1,
        help="workload scale (1.0 = paper size)",
    )
    record.add_argument("--algorithm", default="LO")
    record.add_argument("--gamma", type=float, default=0.5)
    record.add_argument(
        "--execution",
        default=None,
        metavar="SPEC",
        help="execution config as 'key=value,...' for PAR/IN/LO"
        " (incl. on_failure/max_retries/retry_backoff)",
    )
    record.add_argument(
        "--repeat", type=int, default=1,
        help="run N times and record the best wall-clock (default: 1)",
    )
    record.add_argument(
        "--label", default="",
        help="free-form tag stored with the entry (git SHA, CI run id, ...)",
    )

    report = perf_commands.add_parser(
        "report", help="print the per-series summary of a history file"
    )
    _add_history(report)

    check = perf_commands.add_parser(
        "check", help="flag regressions against the rolling baseline"
    )
    _add_history(check)
    check.add_argument(
        "--threshold",
        default="20%",
        help="regression threshold: '20%%', 20 or 0.2 (default: 20%%)",
    )
    check.add_argument(
        "--window",
        type=int,
        default=DEFAULT_BASELINE_WINDOW,
        help="rolling-baseline width (median of up to N prior runs)",
    )

    shell = commands.add_parser(
        "shell", help="interactive SKYLINE SQL shell"
    )
    shell.add_argument(
        "--open", dest="open_dir", default=None,
        help="load a database directory on startup",
    )
    shell.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="NAME=CSV",
        help="preload a CSV as a table (repeatable)",
    )

    dataset = commands.add_parser(
        "dataset", help="inspect / convert grouped-dataset npz archives"
    )
    dataset_commands = dataset.add_subparsers(
        dest="dataset_command", required=True
    )
    convert = dataset_commands.add_parser(
        "convert",
        help="migrate an archive between store format v1 and v2",
    )
    convert.add_argument("source", help="input .npz archive (v1 or v2)")
    convert.add_argument("destination", help="output .npz archive")
    convert.add_argument(
        "--to",
        dest="target_version",
        type=int,
        default=2,
        choices=(1, 2),
        help="target store format version (default: 2, columnar)",
    )
    convert.add_argument(
        "--no-check",
        action="store_true",
        help="skip the round-trip verification of the written archive",
    )
    info = dataset_commands.add_parser(
        "info", help="print an archive's format version and shape"
    )
    info.add_argument("path", help=".npz archive to inspect")

    serve = commands.add_parser(
        "serve",
        help="persistent skyline session: attach a CSV once, run many"
        " queries (REPL or --batch)",
    )
    serve.add_argument("--csv", required=True, help="input CSV file")
    serve.add_argument(
        "--group-by", required=True, help="comma-separated grouping columns"
    )
    serve.add_argument(
        "--of",
        required=True,
        help="skyline dimensions, e.g. 'pop:max,qual:min'",
    )
    serve.add_argument(
        "--execution",
        default=None,
        metavar="SPEC",
        help="session execution config as 'key=value,...' (sizes the"
        " persistent pool; e.g. 'workers=4,scheduler=stealing')",
    )
    serve.add_argument(
        "--batch",
        default=None,
        metavar="FILE",
        help="run query specs from a JSONL file (one JSON object of"
        " query keywords per line; '-' reads stdin) instead of the REPL",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the attached dataset over TCP (JSONL protocol plus"
        " an HTTP/1.1 POST shim on the same port) instead of the REPL;"
        " port 0 picks a free port",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=4,
        metavar="N",
        help="(--listen) queries executing concurrently on the pool"
        " (default: 4)",
    )
    serve.add_argument(
        "--max-waiting",
        type=int,
        default=32,
        metavar="N",
        help="(--listen) queries allowed to wait for a slot before the"
        " server sheds load with an 'overloaded' frame (default: 32)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="(--listen) default per-request deadline; expiry returns a"
        " 'timeout' error frame (default: none)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="(--listen) how long SIGTERM/SIGINT waits for in-flight"
        " queries before force-closing (default: 10)",
    )
    _add_obs_flags(serve)

    stats = commands.add_parser(
        "stats", help="shape statistics + algorithm suggestion for a CSV"
    )
    stats.add_argument("--csv", required=True, help="input CSV file")
    stats.add_argument(
        "--group-by", required=True, help="comma-separated grouping columns"
    )
    stats.add_argument(
        "--of",
        required=True,
        help="skyline dimensions, e.g. 'pop:max,qual:min'",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "query": _cmd_query,
        "skyline": _cmd_skyline,
        "rank": _cmd_rank,
        "generate": _cmd_generate,
        "nba": _cmd_nba,
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "stats": _cmd_stats,
        "shell": _cmd_shell,
        "metrics": _cmd_metrics,
        "dataset": _cmd_dataset,
        "perf": _cmd_perf,
        "serve": _cmd_serve,
    }[args.command]
    obs_state = _setup_obs(args)
    try:
        return handler(args)
    finally:
        _emit_obs(args, obs_state)


# ----------------------------------------------------------------------
# observability plumbing (--trace / --metrics)
# ----------------------------------------------------------------------


def _setup_obs(args):
    """Enable tracing/metrics/run-log for this invocation when requested."""
    trace_target = getattr(args, "trace", None)
    metrics_target = getattr(args, "metrics", None)
    log_target = getattr(args, "log_json", None)
    sink = None
    if trace_target is not None:
        sink = obs.InMemorySink(capacity=256)
        obs.enable_tracing(sink)
    if metrics_target is not None:
        obs.enable_metrics(obs.MetricsRegistry())
    if log_target is not None:
        runlog = obs.enable_runlog(log_target)
        runlog.emit("cli_start", command=args.command)
    return sink


def _emit_obs(args, sink) -> None:
    trace_target = getattr(args, "trace", None)
    metrics_target = getattr(args, "metrics", None)
    log_target = getattr(args, "log_json", None)
    if log_target is not None:
        obs.get_runlog().emit("cli_end", command=args.command)
        obs.disable_runlog()
    if trace_target is not None and sink is not None:
        if trace_target == "-":
            for span in sink.traces:
                print("\n" + obs.render_trace(span))
        else:
            jsonl = obs.JsonlSink(trace_target)
            try:
                for span in sink.traces:
                    jsonl.emit(span)
            finally:
                jsonl.close()
            print(
                f"wrote {len(sink.traces)} trace(s) to {trace_target}",
                file=sys.stderr,
            )
        obs.disable_tracing()
    if metrics_target is not None:
        registry = obs.get_registry()
        if metrics_target == "-":
            print("\n" + registry.to_prometheus(), end="")
        elif metrics_target.endswith(".json"):
            with open(metrics_target, "w", encoding="utf-8") as handle:
                handle.write(registry.to_json() + "\n")
        else:
            with open(metrics_target, "w", encoding="utf-8") as handle:
                handle.write(registry.to_prometheus())
        obs.disable_metrics()


def _cmd_query(args) -> int:
    catalog = {}
    for binding in args.table:
        name, _, path = binding.partition("=")
        if not path:
            print(f"error: --table expects NAME=CSV, got {binding!r}",
                  file=sys.stderr)
            return 2
        catalog[name] = load_csv(path)
    if args.explain:
        result = execute(
            args.sql, catalog, execution=args.execution, explain=True
        )
        for row in result.table.rows:
            print(row[0])
        return 0
    result = execute(args.sql, catalog, execution=args.execution)
    print(result.to_text(max_rows=args.max_rows))
    if result.skyline_result is not None:
        stats = result.skyline_result.stats
        print(
            f"\n[{stats.algorithm}] {len(result.skyline_result)} groups in"
            f" the skyline; {stats.group_comparisons} group comparisons,"
            f" {stats.record_pairs_examined} record pairs"
        )
    return 0


def _cmd_skyline(args) -> int:
    table = load_csv(args.csv)
    keys = [c.strip() for c in args.group_by.split(",") if c.strip()]
    measures, directions = _parse_measures(args.of)
    dataset = grouped_dataset_from_table(table, keys, measures, directions)
    execution = (
        ExecutionConfig.from_spec(args.execution) if args.execution else None
    )
    if args.explain:
        from .plan import explain_dataset

        print(
            explain_dataset(
                dataset,
                gamma=args.gamma,
                algorithm=args.algorithm,
                execution=execution,
                measures=measures,
            )
        )
        return 0
    if args.progress:
        return _skyline_with_progress(args, dataset)
    algorithm = args.algorithm
    if args.workers is not None:
        # Deprecated shortcut: --workers implies the PAR algorithm, the
        # pre-ExecutionConfig behaviour.  --execution workers=N keeps the
        # chosen algorithm (PAR/IN/LO all parallelise now).
        algorithm = "PAR"
        if execution is None:
            execution = ExecutionConfig(workers=args.workers)
        elif execution.workers is None:
            execution = execution.replace(workers=args.workers)
    result = aggregate_skyline(
        dataset, gamma=args.gamma, algorithm=algorithm, execution=execution
    )
    out = Table(["group"], [[_render_key(k)] for k in result.keys])
    print(out.to_text())
    stats = result.stats
    print(
        f"\n[{stats.algorithm}] gamma={result.gamma:g};"
        f" {len(result)}/{len(dataset)} groups survive;"
        f" {stats.group_comparisons} group comparisons,"
        f" {stats.record_pairs_examined} record pairs"
    )
    return 0


def _skyline_with_progress(args, dataset) -> int:
    """Heartbeat lines on stderr while the skyline is computed.

    Serial invocations use the anytime engine (exact Definition-2 result,
    pair-budget ETA).  With ``--execution workers=N`` (or ``--workers``)
    the chosen pooled algorithm runs instead and the reporter is fed the
    pool's chunk-claim telemetry, so the ETA comes from the chunk rate
    (:func:`repro.obs.progress.eta_from_chunks`).
    """
    reporter = obs.ProgressReporter(
        lambda event: print(event.describe(), file=sys.stderr),
        min_interval=0.5,
    )
    execution = (
        ExecutionConfig.from_spec(args.execution) if args.execution else None
    )
    if args.workers is not None and execution is None:
        execution = ExecutionConfig(workers=args.workers)
    if execution is not None and execution.parallel:
        return _pooled_skyline_with_progress(
            args, dataset, execution, reporter
        )
    from .core.anytime import AnytimeAggregateSkyline

    engine = AnytimeAggregateSkyline(dataset, gamma=args.gamma)
    confirmed = engine.run(progress=reporter)
    out = Table(["group"], [[_render_key(k)] for k in confirmed])
    print(out.to_text())
    print(
        f"\n[anytime] gamma={args.gamma:g};"
        f" {len(confirmed)}/{len(dataset)} groups survive;"
        f" {engine.pairs_examined} record pairs"
        f" (budget {engine.pair_budget})"
    )
    return 0


def _pooled_skyline_with_progress(args, dataset, execution, reporter) -> int:
    """Pooled algorithm with chunk-claim heartbeats (same output shape)."""
    from .core.algorithms import make_algorithm

    name = "PAR" if args.workers is not None else args.algorithm
    engine = make_algorithm(name, gamma=args.gamma, execution=execution)
    engine.progress_reporter = reporter
    result = engine.compute(dataset)
    out = Table(["group"], [[_render_key(k)] for k in result.keys])
    print(out.to_text())
    stats = result.stats
    print(
        f"\n[{stats.algorithm}] gamma={result.gamma:g};"
        f" {len(result)}/{len(dataset)} groups survive;"
        f" {stats.group_comparisons} group comparisons,"
        f" {stats.record_pairs_examined} record pairs"
    )
    return 0


def _cmd_perf(args) -> int:
    history = obs.PerfHistory(args.history)
    if args.perf_command == "record":
        dataset = load_workload(args.workload, scale=args.scale)
        execution = (
            ExecutionConfig.from_spec(args.execution)
            if args.execution
            else None
        )
        repeat = max(1, args.repeat)
        best = None
        for _ in range(repeat):
            result = aggregate_skyline(
                dataset,
                gamma=args.gamma,
                algorithm=args.algorithm,
                execution=execution,
            )
            if best is None or (
                result.stats.elapsed_seconds < best.stats.elapsed_seconds
            ):
                best = result
        stats = best.stats
        entry = history.record(
            dataset.fingerprint(),
            stats.algorithm,
            stats.elapsed_seconds,
            execution=execution.to_dict() if execution is not None else {},
            counters={
                "group_comparisons": stats.group_comparisons,
                "record_pairs_examined": stats.record_pairs_examined,
            },
            label=args.label or os.environ.get("REPRO_PERF_LABEL", ""),
        )
        print(
            f"recorded {entry.algorithm} [{entry.fingerprint[:12]}]"
            f" {entry.elapsed_seconds:.6g}s"
            f" (best of {repeat}) into {history.path}"
        )
        return 0
    if args.perf_command == "report":
        print(history.describe())
        return 0
    # check
    report = history.check(
        threshold=args.threshold, baseline_window=args.window
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_metrics(args) -> int:
    registry = obs.get_registry()
    if args.demo:
        # Exercise the engine so the dump shows real series.
        spec = SyntheticSpec(
            n_records=400, avg_group_size=20, dimensions=3, seed=11
        )
        dataset = generate_grouped(spec)
        obs.enable_metrics(registry)
        try:
            for name in ("NL", "LO"):
                aggregate_skyline(dataset, gamma=0.5, algorithm=name)
        finally:
            obs.disable_metrics()
    if args.format == "json":
        text = registry.to_json() + "\n"
    elif args.format == "openmetrics":
        text = registry.to_openmetrics()
    else:
        text = registry.to_prometheus()
    if args.out == "-":
        print(text, end="")
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    return 0


def _parse_measures(spec: str):
    measures = []
    directions = []
    for piece in spec.split(","):
        column, _, direction = piece.strip().partition(":")
        measures.append(column)
        directions.append(Direction.from_any(direction or "max"))
    return measures, directions


def _cmd_rank(args) -> int:
    from .core.ranking import compute_gamma_profile

    table = load_csv(args.csv)
    keys = [c.strip() for c in args.group_by.split(",") if c.strip()]
    measures, directions = _parse_measures(args.of)
    dataset = grouped_dataset_from_table(table, keys, measures, directions)
    profile = compute_gamma_profile(dataset)
    ranking = profile.ranked()
    if args.limit is not None:
        ranking = ranking[: args.limit]
    rows = [
        (
            _render_key(key),
            "never" if gamma is None else f"{float(gamma):.4f}",
        )
        for key, gamma in ranking
    ]
    print(Table(["group", "minimal gamma"], rows).to_text())
    return 0


def _cmd_shell(args) -> int:
    from .query.shell import Shell
    from .relational.database import Database

    if args.open_dir:
        database = Database.load(args.open_dir)
    else:
        database = Database()
    for binding in args.table:
        name, _, path = binding.partition("=")
        if not path:
            print(f"error: --table expects NAME=CSV, got {binding!r}",
                  file=sys.stderr)
            return 2
        database.register(name, load_csv(path))
    return Shell(database=database).run()


def _serve_parse_line(line: str):
    """Parse one REPL line into query() keywords, or a command string.

    ``gamma=0.6 algorithm=PAR dims=0,1`` → kwargs; bare words like
    ``stats`` / ``quit`` are session commands.  ``explain [key=value...]``
    renders the plan the optimizer would pick, without executing.
    """
    tokens = line.split()
    if tokens and tokens[0].lower() == "explain":
        return "explain", _serve_parse_kwargs(tokens[1:])
    if len(tokens) == 1 and "=" not in tokens[0]:
        return tokens[0].lower(), None
    return None, _serve_parse_kwargs(tokens)


def _serve_parse_kwargs(tokens):
    from .core.execution import suggest

    kwargs = {}
    for token in tokens:
        key, eq, value = token.partition("=")
        if not eq:
            raise ValueError(
                f"expected key=value, got {token!r} (example: gamma=0.6)"
            )
        if key == "gamma":
            try:
                kwargs["gamma"] = float(value)
            except ValueError:
                raise ValueError(
                    f"gamma expects a number in [0.5, 1], got {value!r}"
                    " (example: gamma=0.6)"
                ) from None
        elif key == "algorithm":
            kwargs["algorithm"] = value
        elif key == "dims":
            try:
                kwargs["dims"] = [int(d) for d in value.split(",") if d]
            except ValueError:
                raise ValueError(
                    f"dims expects comma-separated column indices, got"
                    f" {value!r} (example: dims=0,1)"
                ) from None
        elif key == "execution":
            kwargs["execution"] = value.replace(";", ",")
        else:
            keywords = ("algorithm", "dims", "execution", "gamma")
            raise ValueError(
                f"unknown query keyword {key!r}; expected one of"
                f" {list(keywords)}" + suggest(key, keywords)
            )
    return kwargs


def _serve_run_one(engine, handle, kwargs) -> None:
    warm_before = engine.stats.warm_queries
    started = time.perf_counter()
    result = engine.query(handle, **kwargs)
    elapsed = time.perf_counter() - started
    mode = "warm" if engine.stats.warm_queries > warm_before else "cold"
    stats = result.stats
    keys = ", ".join(_render_key(k) for k in result.keys[:8])
    if len(result.keys) > 8:
        keys += f", ... (+{len(result.keys) - 8})"
    print(
        f"[{stats.algorithm} {mode}] gamma={result.gamma:g};"
        f" {len(result)} groups in {elapsed:.3f}s:"
        f" {keys or '(empty)'}"
    )


def _serve_load_batch(stream):
    """Validate a JSONL spec stream line by line.

    Returns ``(entries, failures)``: entries are ``(lineno, kwargs)``
    for every valid spec, failures are ``(lineno, message)`` for every
    line that is not valid JSON, not an object, mistypes a known key,
    or names an unknown one — validated up front so a bad line is
    reported and skipped instead of crashing the batch mid-stream.
    """
    from .net import protocol as net_protocol

    entries, failures = [], []
    for lineno, line in enumerate(stream, start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            frame = net_protocol.decode_frame(line)
            entries.append((lineno, net_protocol.validate_spec(frame)))
        except net_protocol.SpecError as exc:
            failures.append((lineno, str(exc)))
    return entries, failures


def _serve_print_result(result) -> None:
    stats = result.stats
    print(
        f"[{stats.algorithm}] gamma={result.gamma:g};"
        f" {len(result)} groups:"
        f" {', '.join(_render_key(k) for k in result.keys)}"
    )


def _serve_batch(args, engine, handle) -> int:
    if args.batch == "-":
        entries, failures = _serve_load_batch(sys.stdin)
    else:
        with open(args.batch, encoding="utf-8") as stream:
            entries, failures = _serve_load_batch(stream)
    for lineno, message in failures:
        print(f"error: line {lineno}: {message}", file=sys.stderr)
    if not entries:
        if not failures:
            print("batch contained no query specs", file=sys.stderr)
            return 0
        return 1
    if any(spec.get("explain") for _, spec in entries):
        # Mixed batches run sequentially so explain lines land in
        # order; pure-query batches keep the pipelined fast path.
        for lineno, spec in entries:
            spec = dict(spec)
            if spec.pop("explain", False):
                print(engine.explain(handle, **spec))
                continue
            _serve_print_result(engine.query(handle, **spec))
    else:
        for result in engine.submit_batch(
            handle, [spec for _, spec in entries]
        ):
            _serve_print_result(result)
    return 1 if failures else 0


def _serve_listen(args, engine, handle) -> int:
    from .net import SkylineServer

    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"error: --listen expects HOST:PORT, got {args.listen!r}"
            " (example: --listen 127.0.0.1:7007)",
            file=sys.stderr,
        )
        return 2
    server = SkylineServer(
        engine,
        handle,
        host=host or "127.0.0.1",
        port=port,
        max_inflight=args.max_inflight,
        max_waiting=args.max_waiting,
        default_deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
    )
    server.install_signal_handlers()
    bound_host, bound_port = server.address
    print(
        f"listening on {bound_host}:{bound_port} (JSONL + HTTP POST;"
        f" max_inflight={args.max_inflight},"
        f" max_waiting={args.max_waiting}) —"
        " SIGTERM/Ctrl-C drains in-flight queries and exits",
        file=sys.stderr,
    )
    server.serve_forever()
    return 0


def _cmd_serve(args) -> int:
    from .engine import SkylineEngine

    table = load_csv(args.csv)
    keys = [c.strip() for c in args.group_by.split(",") if c.strip()]
    measures, directions = _parse_measures(args.of)
    dataset = grouped_dataset_from_table(table, keys, measures, directions)
    with SkylineEngine(execution=args.execution) as engine:
        handle = engine.attach(dataset)
        pids = engine.worker_pids
        print(
            f"attached {len(dataset)} groups"
            f" ({dataset.total_records} records,"
            f" {'shm' if handle.via_shm else 'pickled'});"
            f" pool: {len(pids)} workers {pids or '(serial)'}",
            file=sys.stderr,
        )
        if args.listen is not None:
            return _serve_listen(args, engine, handle)
        if args.batch is not None:
            return _serve_batch(args, engine, handle)
        print(
            "query: gamma=0.6 [algorithm=LO] [dims=0,1] — commands:"
            " explain [key=value...], stats, pids, quit",
            file=sys.stderr,
        )
        while True:
            try:
                line = input("skyline> ").strip()
            except EOFError:
                print(file=sys.stderr)
                break
            if not line:
                continue
            try:
                command, kwargs = _serve_parse_line(line)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                continue
            if command in ("quit", "exit"):
                break
            if command == "explain":
                try:
                    print(engine.explain(handle, **kwargs))
                except Exception as exc:
                    print(f"error: {exc}", file=sys.stderr)
                continue
            if command == "pids":
                print(engine.worker_pids)
                continue
            if command == "stats":
                s = engine.stats
                print(
                    f"queries={s.queries} (warm={s.warm_queries},"
                    f" cold={s.cold_queries}) attaches={s.attaches}"
                    f" batches={s.batches} slot_respawns={s.slot_respawns}"
                )
                continue
            if command is not None:
                print(f"error: unknown command {command!r}", file=sys.stderr)
                continue
            try:
                _serve_run_one(engine, handle, kwargs)
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
    return 0


def _cmd_stats(args) -> int:
    from .core.diagnostics import dataset_statistics, suggest_algorithm

    table = load_csv(args.csv)
    keys = [c.strip() for c in args.group_by.split(",") if c.strip()]
    measures, directions = _parse_measures(args.of)
    dataset = grouped_dataset_from_table(table, keys, measures, directions)
    stats = dataset_statistics(dataset)
    print(stats.describe())
    print(f"suggested algorithm: {suggest_algorithm(dataset)}")
    return 0


def _render_key(key) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def _cmd_generate(args) -> int:
    spec = SyntheticSpec(
        n_records=args.records,
        avg_group_size=args.group_size,
        dimensions=args.dims,
        distribution=args.distribution,
        group_spread=args.spread,
        size_distribution=args.sizes,
        seed=args.seed,
    )
    dataset = generate_grouped(spec)
    columns = ["group", *(f"a{i}" for i in range(spec.dimensions))]
    rows = [
        [group.key, *(float(v) for v in record)]
        for group in dataset
        for record in group.values
    ]
    save_csv(Table(columns, rows), args.out)
    print(
        f"wrote {len(rows)} records in {len(dataset)} groups to {args.out}"
    )
    return 0


def _cmd_nba(args) -> int:
    table = nba_table(seed=args.seed, target_rows=args.rows)
    save_csv(table, args.out)
    print(f"wrote {len(table)} player-seasons to {args.out}")
    return 0


def _cmd_experiment(args) -> int:
    report = run_figure(args.figure, scale=args.scale, workers=args.workers)
    print(report.text)
    return 0


def _cmd_compare(args) -> int:
    from .harness.persistence import load_results

    baseline = load_results(args.baseline)
    contender = load_results(args.contender)

    def key_of(result):
        return (
            result.experiment,
            tuple(sorted((k, str(v)) for k, v in result.params.items())),
            result.algorithm,
        )

    contenders = {key_of(r): r for r in contender}
    rows = []
    for before in baseline:
        after = contenders.get(key_of(before))
        if after is None or after.elapsed_seconds == 0:
            continue
        rows.append(
            (
                before.experiment,
                before.algorithm,
                _render_key(tuple(f"{k}={v}" for k, v in before.params.items())),
                round(before.elapsed_seconds, 4),
                round(after.elapsed_seconds, 4),
                round(before.elapsed_seconds / after.elapsed_seconds, 2),
            )
        )
    if not rows:
        print("no overlapping measurements between the two files")
        return 1
    print(
        Table(
            ["experiment", "algorithm", "params",
             "before (s)", "after (s)", "speed-up"],
            rows,
        ).to_text()
    )
    # Work-counter deltas (only shown when some counter actually moved):
    # a genuine perf win reduces comparisons/pairs, not just wall-clock.
    from .harness.reporting import counter_delta_table

    deltas = counter_delta_table(baseline, contender)
    if len(deltas):
        print("\nwork-counter deltas:")
        print(deltas.to_text())
    return 0


def _cmd_dataset(args) -> int:
    from .data.store import load_grouped, read_manifest, save_grouped

    if args.dataset_command == "info":
        manifest = read_manifest(args.path)
        dataset = load_grouped(args.path)
        print(f"format version : {manifest.get('version')}")
        print(f"groups         : {len(dataset)}")
        print(f"records        : {dataset.total_records}")
        print(f"dimensions     : {dataset.dimensions}")
        print(
            "directions     : "
            + ",".join(d.value for d in dataset.directions)
        )
        print(f"fingerprint    : {dataset.fingerprint()}")
        return 0

    # convert
    source_version = read_manifest(args.source).get("version")
    # mmap=False: the conversion reads everything once anyway, and an
    # eager load keeps the destination independent of the source file.
    dataset = load_grouped(args.source, mmap=False)
    save_grouped(dataset, args.destination, version=args.target_version)
    if not args.no_check:
        back = load_grouped(args.destination, mmap=False)
        if back.fingerprint() != dataset.fingerprint():
            print(
                "round-trip check FAILED: converted archive does not"
                " reproduce the source dataset",
                file=sys.stderr,
            )
            return 1
    print(
        f"converted {args.source} (v{source_version}) -> "
        f"{args.destination} (v{args.target_version}): "
        f"{len(dataset)} groups, {dataset.total_records} records"
        + ("" if args.no_check else " [round-trip OK]")
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
