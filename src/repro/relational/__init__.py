"""In-memory relational engine substrate."""

from .aggregates import AGGREGATE_FUNCTIONS, aggregate_label, apply_aggregate
from .csvio import dumps_csv, load_csv, loads_csv, save_csv
from .database import Database, DatabaseError
from .operators import (
    AggregateSpec,
    group_by,
    grouped_dataset_from_table,
    weighted_groups_from_table,
)
from .table import Table

__all__ = [
    "Table",
    "AggregateSpec",
    "group_by",
    "grouped_dataset_from_table",
    "weighted_groups_from_table",
    "AGGREGATE_FUNCTIONS",
    "apply_aggregate",
    "aggregate_label",
    "load_csv",
    "save_csv",
    "loads_csv",
    "dumps_csv",
    "Database",
    "DatabaseError",
]
