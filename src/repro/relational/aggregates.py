"""Aggregate functions for GROUP BY queries (COUNT/SUM/AVG/MIN/MAX)."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["AGGREGATE_FUNCTIONS", "apply_aggregate", "aggregate_label"]


def _non_null(values: Sequence[Any]) -> List[Any]:
    return [v for v in values if v is not None]


def _agg_count(values: Sequence[Any]) -> int:
    return len(_non_null(values))


def _agg_sum(values: Sequence[Any]) -> Optional[float]:
    data = _non_null(values)
    return sum(data) if data else None


def _agg_avg(values: Sequence[Any]) -> Optional[float]:
    data = _non_null(values)
    return sum(data) / len(data) if data else None


def _agg_min(values: Sequence[Any]) -> Any:
    data = _non_null(values)
    return min(data) if data else None


def _agg_max(values: Sequence[Any]) -> Any:
    data = _non_null(values)
    return max(data) if data else None


AGGREGATE_FUNCTIONS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}


def apply_aggregate(name: str, values: Sequence[Any]) -> Any:
    """Evaluate aggregate ``name`` over a column slice of one group."""
    try:
        function = AGGREGATE_FUNCTIONS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {name!r};"
            f" supported: {sorted(AGGREGATE_FUNCTIONS)}"
        ) from None
    return function(values)


def aggregate_label(name: str, column: str) -> str:
    """Result column name for ``name(column)`` (SQL-style)."""
    return f"{name.lower()}({column})"
