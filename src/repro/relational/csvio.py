"""CSV loading/saving for :class:`~repro.relational.table.Table`.

Values are type-inferred per cell: int, then float, then string; empty cells
become ``None``.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Union

from .table import Table

__all__ = ["load_csv", "save_csv", "loads_csv", "dumps_csv"]


def _parse_cell(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def loads_csv(content: str) -> Table:
    """Parse CSV text (first row = header) into a table."""
    reader = csv.reader(io.StringIO(content))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV content is empty") from None
    rows = [[_parse_cell(cell) for cell in row] for row in reader if row]
    return Table(header, rows)


def load_csv(path: Union[str, Path]) -> Table:
    """Read a CSV file into a table."""
    with open(path, newline="") as handle:
        return loads_csv(handle.read())


def dumps_csv(table: Table) -> str:
    """Serialise a table to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.columns)
    for row in table.rows:
        writer.writerow(["" if v is None else v for v in row])
    return buffer.getvalue()


def save_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table to a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(dumps_csv(table))
