"""GROUP BY / HAVING and the grouped-table bridge to the skyline core."""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple, Union

from ..core.groups import GroupedDataset
from .aggregates import aggregate_label, apply_aggregate
from .table import Row, Table

__all__ = [
    "AggregateSpec",
    "group_by",
    "grouped_dataset_from_table",
    "weighted_groups_from_table",
]


class AggregateSpec:
    """One aggregate output column, e.g. ``max(Pop) AS best_pop``."""

    __slots__ = ("function", "column", "alias")

    def __init__(self, function: str, column: str, alias: str = ""):
        self.function = function.lower()
        self.column = column
        self.alias = alias or aggregate_label(function, column)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AggregateSpec({self.function}({self.column}) AS {self.alias})"


def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec] = (),
    having: Union[Callable[[Dict[str, Any]], bool], None] = None,
) -> Table:
    """SQL GROUP BY: one output row per distinct key combination.

    ``COUNT(*)`` is expressed as ``AggregateSpec("count", "*")``.  The
    optional ``having`` predicate sees the key and aggregate columns of each
    output row.
    """
    partitions = table.group_rows(keys)
    columns = [*keys, *(spec.alias for spec in aggregates)]
    rows: List[Row] = []
    for key, members in partitions.items():
        values: List[Any] = list(key)
        for spec in aggregates:
            if spec.column == "*":
                if spec.function != "count":
                    raise ValueError(
                        f"'*' only valid for count, not {spec.function}"
                    )
                values.append(len(members))
            else:
                position = table.column_position(spec.column)
                values.append(
                    apply_aggregate(spec.function, [m[position] for m in members])
                )
        rows.append(tuple(values))
    result = Table(columns, rows)
    if having is not None:
        result = result.select(having)
    return result


def grouped_dataset_from_table(
    table: Table,
    keys: Sequence[str],
    measures: Sequence[str],
    directions: Union[None, Sequence] = None,
) -> GroupedDataset:
    """Bridge a relational GROUP BY to the aggregate-skyline core.

    Partitions ``table`` by ``keys`` and keeps the ``measures`` columns as
    the skyline dimensions; the resulting :class:`GroupedDataset` feeds any
    aggregate-skyline algorithm.  Group keys are single values for one key
    column and tuples otherwise (mirroring SQL semantics).
    """
    if not measures:
        raise ValueError("at least one skyline measure is required")
    positions = [table.column_position(c) for c in measures]
    partitions = table.group_rows(keys)
    groups: Dict[Hashable, List[Tuple[float, ...]]] = {}
    for key, members in partitions.items():
        flat_key: Hashable = key[0] if len(key) == 1 else key
        groups[flat_key] = [
            tuple(float(member[p]) for p in positions) for member in members
        ]
    return GroupedDataset(groups, directions=directions)


def weighted_groups_from_table(
    table: Table,
    keys: Sequence[str],
    measures: Sequence[str],
    weight: str,
):
    """Partition a table for the *weighted* aggregate skyline.

    Returns ``{group key: (records, weights)}`` suitable for
    :func:`repro.core.weighted.weighted_aggregate_skyline`; the ``weight``
    column must hold non-negative integers (e.g. games played, case
    counts).
    """
    if not measures:
        raise ValueError("at least one skyline measure is required")
    positions = [table.column_position(c) for c in measures]
    weight_position = table.column_position(weight)
    partitions = table.group_rows(keys)
    groups: Dict[Hashable, Tuple[List[Tuple[float, ...]], List[int]]] = {}
    for key, members in partitions.items():
        flat_key: Hashable = key[0] if len(key) == 1 else key
        records = [
            tuple(float(member[p]) for p in positions) for member in members
        ]
        weights = [int(member[weight_position]) for member in members]
        groups[flat_key] = (records, weights)
    return groups
