"""A small in-memory relational table.

The paper frames the aggregate skyline as an SQL-level operator (a
``HAVING``-like filter over ``GROUP BY``); this substrate provides the
relational algebra the query layer plans against: selection, projection,
grouping with aggregates, ordering, limiting, distinct and inner join.

Values are plain Python scalars (``int``/``float``/``str``/``None``); a
column's type is whatever its values are.  Rows are tuples; the
:class:`Table` is immutable in style — every operator returns a new table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Table", "Row"]

Value = Any
Row = Tuple[Value, ...]


class Table:
    """Column-named, row-ordered relation."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Value]]):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")
        self._index: Dict[str, int] = {
            name: position for position, name in enumerate(self.columns)
        }
        self.rows: List[Row] = []
        width = len(self.columns)
        for row in rows:
            tup = tuple(row)
            if len(tup) != width:
                raise ValueError(
                    f"row {tup!r} has {len(tup)} values, expected {width}"
                )
            self.rows.append(tup)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_dicts(cls, records: Sequence[Mapping[str, Value]],
                   columns: Optional[Sequence[str]] = None) -> "Table":
        if columns is None:
            if not records:
                raise ValueError("cannot infer columns from zero records")
            columns = list(records[0].keys())
        return cls(columns, [[rec.get(c) for c in columns] for rec in records])

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def column_position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {list(self.columns)}"
            ) from None

    def column_values(self, name: str) -> List[Value]:
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def row_dict(self, row: Row) -> Dict[str, Value]:
        return dict(zip(self.columns, row))

    def iter_dicts(self) -> Iterable[Dict[str, Value]]:
        for row in self.rows:
            yield self.row_dict(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Dict[str, Value]], bool]) -> "Table":
        """Rows satisfying ``predicate`` (called with a column dict)."""
        kept = [row for row in self.rows if predicate(self.row_dict(row))]
        return Table(self.columns, kept)

    def project(self, columns: Sequence[str]) -> "Table":
        positions = [self.column_position(c) for c in columns]
        return Table(columns, [[row[p] for p in positions] for row in self.rows])

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        renamed = [mapping.get(c, c) for c in self.columns]
        return Table(renamed, self.rows)

    def extend(self, name: str, function: Callable[[Dict[str, Value]], Value]) -> "Table":
        """Append a computed column."""
        if name in self._index:
            raise ValueError(f"column {name!r} already exists")
        new_rows = [
            (*row, function(self.row_dict(row))) for row in self.rows
        ]
        return Table((*self.columns, name), new_rows)

    def distinct(self) -> "Table":
        seen = set()
        kept = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                kept.append(row)
        return Table(self.columns, kept)

    def order_by(
        self,
        keys: Sequence[Union[str, Tuple[str, bool]]],
    ) -> "Table":
        """Sort rows; each key is a column name or ``(name, descending)``."""
        normalised: List[Tuple[int, bool]] = []
        for key in keys:
            if isinstance(key, tuple):
                name, descending = key
            else:
                name, descending = key, False
            normalised.append((self.column_position(name), descending))
        rows = list(self.rows)
        # Stable sort applied from the last key to the first.
        for position, descending in reversed(normalised):
            rows.sort(key=lambda row: row[position], reverse=descending)
        return Table(self.columns, rows)

    def limit(self, count: int) -> "Table":
        if count < 0:
            raise ValueError("limit must be non-negative")
        return Table(self.columns, self.rows[:count])

    def join(self, other: "Table", on: Sequence[str]) -> "Table":
        """Inner equi-join on shared columns ``on``."""
        for column in on:
            self.column_position(column)
            other.column_position(column)
        left_positions = [self.column_position(c) for c in on]
        right_positions = [other.column_position(c) for c in on]
        right_keep = [c for c in other.columns if c not in on]
        right_keep_positions = [other.column_position(c) for c in right_keep]

        buckets: Dict[Tuple, List[Row]] = {}
        for row in other.rows:
            key = tuple(row[p] for p in right_positions)
            buckets.setdefault(key, []).append(row)

        joined_columns = (*self.columns, *right_keep)
        joined_rows = []
        for row in self.rows:
            key = tuple(row[p] for p in left_positions)
            for match in buckets.get(key, ()):
                joined_rows.append(
                    (*row, *(match[p] for p in right_keep_positions))
                )
        return Table(joined_columns, joined_rows)

    def group_rows(self, keys: Sequence[str]) -> Dict[Tuple, List[Row]]:
        """Partition rows by the values of ``keys`` (preserving order)."""
        positions = [self.column_position(c) for c in keys]
        partitions: Dict[Tuple, List[Row]] = {}
        for row in self.rows:
            key = tuple(row[p] for p in positions)
            partitions.setdefault(key, []).append(row)
        return partitions

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def to_text(self, max_rows: Optional[int] = None) -> str:
        """Fixed-width rendering (for the CLI and examples)."""
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        cells = [[_fmt(v) for v in row] for row in rows]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(self.columns, widths))
        rule = "-" * len(header)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in cells
        ]
        suffix = []
        if max_rows is not None and len(self.rows) > max_rows:
            suffix.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join([header, rule, *body, *suffix])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Table(columns={list(self.columns)}, rows={len(self.rows)})"


def _fmt(value: Value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
