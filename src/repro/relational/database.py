"""A named-table database with directory persistence.

Thin management layer over :class:`~repro.relational.table.Table`: create,
drop, insert, and persist a set of named tables to a directory (one CSV per
table plus a JSON catalog).  Implements the mapping protocol, so a
``Database`` can be passed directly as the catalog of
:func:`repro.query.executor.execute` — which is how the ``aggskyline
shell`` REPL serves SKYLINE queries over it.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Union

from .csvio import load_csv, save_csv
from .table import Table

__all__ = ["Database", "DatabaseError"]

_NAME_PATTERN = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_CATALOG_FILE = "catalog.json"
_CATALOG_VERSION = 1


class DatabaseError(ValueError):
    """Raised for catalog-level mistakes (unknown/duplicate tables, ...)."""


class Database:
    """An ordered collection of named tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # mapping protocol (usable as an execute() catalog)
    # ------------------------------------------------------------------

    def __getitem__(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise DatabaseError(
                f"no table {name!r}; existing: {self.table_names()}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def __len__(self) -> int:
        return len(self._tables)

    def keys(self):
        return self._tables.keys()

    def table_names(self) -> List[str]:
        return list(self._tables)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_PATTERN.match(name):
            raise DatabaseError(
                f"invalid table name {name!r} (letters, digits, underscore;"
                " must not start with a digit)"
            )

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        """Create an empty table; errors if the name is taken."""
        self._check_name(name)
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists")
        if not columns:
            raise DatabaseError("a table needs at least one column")
        table = Table(columns, [])
        self._tables[name] = table
        return table

    def register(self, name: str, table: Table) -> None:
        """Attach an existing table under ``name`` (replacing any old one)."""
        self._check_name(name)
        self._tables[name] = table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise DatabaseError(f"no table {name!r} to drop")
        del self._tables[name]

    def insert(self, name: str, rows: Iterable[Sequence]) -> int:
        """Append rows to a table; returns the number inserted."""
        table = self[name]
        new_rows = list(table.rows)
        added = 0
        width = len(table.columns)
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise DatabaseError(
                    f"row {values!r} has {len(values)} values,"
                    f" table {name!r} has {width} columns"
                )
            new_rows.append(values)
            added += 1
        self._tables[name] = Table(table.columns, new_rows)
        return added

    def schema(self, name: str) -> List[str]:
        return list(self[name].columns)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, directory: Union[str, Path]) -> None:
        """Write the catalog and one CSV per table into ``directory``."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        catalog = {
            "version": _CATALOG_VERSION,
            "tables": self.table_names(),
        }
        (path / _CATALOG_FILE).write_text(json.dumps(catalog, indent=2))
        for name, table in self._tables.items():
            save_csv(table, path / f"{name}.csv")

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "Database":
        """Read a database written by :meth:`save`.

        A directory without a catalog is also accepted: every ``*.csv``
        becomes a table named after its stem (handy for ad-hoc data
        directories).
        """
        path = Path(directory)
        if not path.is_dir():
            raise DatabaseError(f"{directory}: not a directory")
        database = cls()
        catalog_path = path / _CATALOG_FILE
        if catalog_path.exists():
            catalog = json.loads(catalog_path.read_text())
            if catalog.get("version") != _CATALOG_VERSION:
                raise DatabaseError(
                    f"unsupported catalog version: {catalog.get('version')!r}"
                )
            names = catalog["tables"]
        else:
            names = sorted(p.stem for p in path.glob("*.csv"))
        for name in names:
            csv_path = path / f"{name}.csv"
            if not csv_path.exists():
                raise DatabaseError(
                    f"catalog references {name!r} but {csv_path} is missing"
                )
            database.register(name, load_csv(csv_path))
        return database
