"""Experiment harness: sweeps, timing, and figure-shaped reporting."""

from .analysis import AlgorithmSummary, growth_exponent, summarize
from .experiments import FIGURES, SCALES, FigureReport, run_figure
from .persistence import (
    load_results,
    results_from_json,
    results_to_json,
    save_results,
)
from .plotting import ascii_chart, chart_from_results
from .reporting import format_figure, series_table, shape_checks, speedup_table
from .runner import RunResult, run_algorithms, sweep

__all__ = [
    "RunResult",
    "run_algorithms",
    "sweep",
    "series_table",
    "speedup_table",
    "format_figure",
    "shape_checks",
    "FigureReport",
    "FIGURES",
    "SCALES",
    "run_figure",
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
    "ascii_chart",
    "chart_from_results",
    "growth_exponent",
    "summarize",
    "AlgorithmSummary",
]
