"""Experiment runner: time algorithms over parameter sweeps.

The benchmarks in ``benchmarks/`` regenerate the paper's figures by calling
:func:`run_algorithms` for each point of a sweep and pivoting the collected
:class:`RunResult` records into the same series the figures plot (run time —
and dominance checks — per algorithm, against the swept parameter).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.algorithms import ALGORITHMS, make_algorithm
from ..core.execution import (
    _LEGACY_EXECUTION_KEYS,
    ExecutionConfig,
    coerce_execution,
)
from ..core.groups import GroupedDataset
from ..obs import metrics as obs_metrics
from ..obs import runlog as obs_runlog
from ..obs import tracing as obs_tracing
from ..plan import logical_for_dataset, optimize

__all__ = ["RunResult", "run_algorithms", "sweep", "PARALLEL_ALGORITHMS"]

DEFAULT_ALGORITHMS = ("NL", "TR", "SI", "IN", "LO")

#: Algorithms the deprecated ``workers=`` shortcut applies to.  The
#: modern ``execution=ExecutionConfig(...)`` parameter instead reaches
#: every algorithm whose class sets ``supports_execution`` (PAR, IN, LO).
PARALLEL_ALGORITHMS = ("PAR",)


@dataclass
class RunResult:
    """One (workload point, algorithm) measurement.

    ``trace`` / ``metrics`` are optional observability payloads (span tree
    and metrics-registry snapshot as plain dicts), collected when
    :func:`run_algorithms` runs with ``collect_obs=True`` and persisted by
    :mod:`repro.harness.persistence` so ``aggskyline compare`` can diff
    counter deltas, not just wall-clock.
    """

    experiment: str
    params: Dict[str, object]
    algorithm: str
    elapsed_seconds: float
    group_comparisons: int
    record_pairs: int
    skyline_size: int
    skyline_keys: frozenset = field(default_factory=frozenset, repr=False)
    trace: Optional[dict] = field(default=None, repr=False)
    metrics: Optional[dict] = field(default=None, repr=False)
    #: Worker-pool size the measurement ran with (``None`` = serial /
    #: unspecified); persisted so saved benchmarks record their parallelism.
    workers: Optional[int] = None
    #: Compact :meth:`ExecutionConfig.to_dict` snapshot of the execution
    #: config the measurement ran with (``None`` = serial legacy path);
    #: persisted so saved benchmarks record scheduler/shm choices too.
    execution: Optional[dict] = None
    #: Planner decision snapshot (:meth:`PlanDecision.as_dict`) when the
    #: run went through the plan pipeline — always for ``"AUTO"``, with
    #: the chosen algorithm, candidate costs and statistics; persisted so
    #: saved benchmarks record *why* an algorithm ran (``None`` for
    #: pre-planner result files and direct explicit runs).
    plan: Optional[dict] = None


def run_algorithms(
    dataset: GroupedDataset,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    gamma: float = 0.5,
    experiment: str = "",
    params: Optional[Mapping[str, object]] = None,
    algorithm_options: Optional[Mapping[str, Mapping]] = None,
    repeats: int = 1,
    verify_consistency: bool = False,
    collect_obs: bool = False,
    workers: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> List[RunResult]:
    """Run each named algorithm on ``dataset`` and collect measurements.

    ``algorithm_options`` maps an algorithm name to extra constructor
    options.  With ``repeats > 1`` the best (minimum) wall-clock time is
    kept, the usual benchmarking convention.  ``verify_consistency`` raises
    if the algorithms disagree on the skyline — useful while developing
    benches, off by default because the paper-faithful pruning policy is
    allowed to deviate on adversarial inputs (see DESIGN.md).

    ``collect_obs=True`` runs every measurement under a scoped tracer and a
    fresh metrics registry and attaches the serialized span tree and
    registry snapshot to the returned :class:`RunResult` records (the
    per-algorithm run span feeds the saved benchmark JSON).

    ``execution`` is an :class:`~repro.core.execution.ExecutionConfig`
    (or mapping / spec string) applied to every algorithm that supports
    pooled execution (``PAR``, ``IN``, ``LO``); serial algorithms ignore
    it.  Its compact snapshot is recorded on the :class:`RunResult` so
    persisted measurements carry scheduler and shm choices.

    ``workers`` is the deprecated pre-ExecutionConfig shortcut: it sizes
    the pool for ``"PAR"`` only and is recorded on its
    :class:`RunResult`.  Prefer ``execution=ExecutionConfig(workers=n)``.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    execution = coerce_execution(execution)
    if workers is not None:
        warnings.warn(
            "run_algorithms(workers=...) is deprecated; pass"
            " execution=ExecutionConfig(workers=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    options = dict(algorithm_options or {})
    results: List[RunResult] = []
    tracer = obs_tracing.get_tracer()
    for name in algorithms:
        engine_options = dict(options.get(name, {}))
        key = name.strip().upper()
        # "AUTO" benchmarks the planner itself: the optimizer picks the
        # engine per workload point, so the execution config must reach it
        # (the cost model decides whether pooled candidates are eligible).
        is_auto = key == "AUTO"
        supports = is_auto or getattr(
            ALGORITHMS.get(key), "supports_execution", False
        )
        engine_execution = execution if supports else None
        if (
            engine_execution is None
            and workers is not None
            and key in PARALLEL_ALGORITHMS
            and "workers" not in engine_options
        ):
            engine_execution = ExecutionConfig(workers=workers)
        result_workers = engine_options.get("workers")
        if result_workers is None and engine_execution is not None:
            result_workers = engine_execution.workers
        execution_payload = (
            engine_execution.to_dict() if engine_execution is not None else None
        )
        if workers is None and any(
            legacy in engine_options for legacy in _LEGACY_EXECUTION_KEYS
        ):
            warnings.warn(
                f"legacy execution options for {key!r} in algorithm_options"
                " are deprecated; pass execution=ExecutionConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        best: Optional[RunResult] = None
        for _ in range(repeats):
            physical = None
            with warnings.catch_warnings():
                # Legacy per-algorithm options already warned above when
                # they came through ``workers=``; avoid repeating the
                # DeprecationWarning once per repeat.
                warnings.simplefilter("ignore", DeprecationWarning)
                if is_auto:
                    logical = logical_for_dataset(
                        dataset, gamma=gamma, algorithm=key
                    )
                    physical = optimize(
                        logical,
                        dataset,
                        gamma=gamma,
                        algorithm=key,
                        execution=engine_execution,
                        options=engine_options,
                        entry="harness",
                    )
                    engine = physical.build_algorithm()
                else:
                    engine = make_algorithm(
                        name, gamma, execution=engine_execution,
                        **engine_options,
                    )
            trace_payload = None
            metrics_payload = None
            with tracer.span(
                "bench.run", experiment=experiment, algorithm=name
            ):
                obs_runlog.emit(
                    "bench_start",
                    experiment=experiment,
                    algorithm=name,
                    params=dict(params or {}),
                )
                if collect_obs:
                    scoped_tracer = obs_tracing.Tracer()
                    with obs_metrics.use_registry() as registry:
                        with obs_tracing.use_tracer(scoped_tracer):
                            started = time.perf_counter()
                            outcome = engine.compute(dataset)
                            elapsed = time.perf_counter() - started
                        if outcome.trace is not None:
                            trace_payload = outcome.trace.to_dict()
                        metrics_payload = registry.as_dict()
                else:
                    started = time.perf_counter()
                    outcome = engine.compute(dataset)
                    elapsed = time.perf_counter() - started
                obs_runlog.emit(
                    "bench_end",
                    experiment=experiment,
                    algorithm=name,
                    elapsed_seconds=elapsed,
                    skyline_size=len(outcome),
                )
            measured = RunResult(
                experiment=experiment,
                params=dict(params or {}),
                algorithm=name,
                elapsed_seconds=elapsed,
                group_comparisons=outcome.stats.group_comparisons,
                record_pairs=outcome.stats.record_pairs_examined,
                skyline_size=len(outcome),
                skyline_keys=frozenset(outcome.keys),
                trace=trace_payload,
                metrics=metrics_payload,
                workers=result_workers,
                execution=execution_payload,
                plan=(
                    physical.decision.as_dict() if physical is not None
                    else None
                ),
            )
            if best is None or measured.elapsed_seconds < best.elapsed_seconds:
                best = measured
        assert best is not None
        results.append(best)

    if verify_consistency and results:
        reference = results[0]
        for other in results[1:]:
            if other.skyline_keys != reference.skyline_keys:
                raise AssertionError(
                    f"{other.algorithm} disagrees with {reference.algorithm}"
                    f" on {experiment} {params}:"
                    f" {sorted(other.skyline_keys ^ reference.skyline_keys)}"
                )
    return results


def sweep(
    experiment: str,
    parameter: str,
    values: Iterable,
    dataset_factory: Callable[[object], GroupedDataset],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    gamma: float = 0.5,
    algorithm_options: Optional[Mapping[str, Mapping]] = None,
    extra_params: Optional[Mapping[str, object]] = None,
    repeats: int = 1,
    collect_obs: bool = False,
    workers: Optional[int] = None,
    execution: Optional[ExecutionConfig] = None,
) -> List[RunResult]:
    """Run ``algorithms`` for each value of a swept parameter.

    ``dataset_factory`` builds the workload for one sweep value.  Returns
    the flat list of measurements (pivot them with
    :func:`repro.harness.reporting.series_table`).
    """
    results: List[RunResult] = []
    for value in values:
        dataset = dataset_factory(value)
        params = {parameter: value, **dict(extra_params or {})}
        results.extend(
            run_algorithms(
                dataset,
                algorithms=algorithms,
                gamma=gamma,
                experiment=experiment,
                params=params,
                algorithm_options=algorithm_options,
                repeats=repeats,
                collect_obs=collect_obs,
                workers=workers,
                execution=execution,
            )
        )
    return results
