"""Experiment runner: time algorithms over parameter sweeps.

The benchmarks in ``benchmarks/`` regenerate the paper's figures by calling
:func:`run_algorithms` for each point of a sweep and pivoting the collected
:class:`RunResult` records into the same series the figures plot (run time —
and dominance checks — per algorithm, against the swept parameter).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.algorithms import make_algorithm
from ..core.groups import GroupedDataset
from ..obs import metrics as obs_metrics
from ..obs import tracing as obs_tracing

__all__ = ["RunResult", "run_algorithms", "sweep", "PARALLEL_ALGORITHMS"]

DEFAULT_ALGORITHMS = ("NL", "TR", "SI", "IN", "LO")

#: Algorithms whose constructor accepts a ``workers`` pool size.
PARALLEL_ALGORITHMS = ("PAR",)


@dataclass
class RunResult:
    """One (workload point, algorithm) measurement.

    ``trace`` / ``metrics`` are optional observability payloads (span tree
    and metrics-registry snapshot as plain dicts), collected when
    :func:`run_algorithms` runs with ``collect_obs=True`` and persisted by
    :mod:`repro.harness.persistence` so ``aggskyline compare`` can diff
    counter deltas, not just wall-clock.
    """

    experiment: str
    params: Dict[str, object]
    algorithm: str
    elapsed_seconds: float
    group_comparisons: int
    record_pairs: int
    skyline_size: int
    skyline_keys: frozenset = field(default_factory=frozenset, repr=False)
    trace: Optional[dict] = field(default=None, repr=False)
    metrics: Optional[dict] = field(default=None, repr=False)
    #: Worker-pool size the measurement ran with (``None`` = serial /
    #: unspecified); persisted so saved benchmarks record their parallelism.
    workers: Optional[int] = None


def run_algorithms(
    dataset: GroupedDataset,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    gamma: float = 0.5,
    experiment: str = "",
    params: Optional[Mapping[str, object]] = None,
    algorithm_options: Optional[Mapping[str, Mapping]] = None,
    repeats: int = 1,
    verify_consistency: bool = False,
    collect_obs: bool = False,
    workers: Optional[int] = None,
) -> List[RunResult]:
    """Run each named algorithm on ``dataset`` and collect measurements.

    ``algorithm_options`` maps an algorithm name to extra constructor
    options.  With ``repeats > 1`` the best (minimum) wall-clock time is
    kept, the usual benchmarking convention.  ``verify_consistency`` raises
    if the algorithms disagree on the skyline — useful while developing
    benches, off by default because the paper-faithful pruning policy is
    allowed to deviate on adversarial inputs (see DESIGN.md).

    ``collect_obs=True`` runs every measurement under a scoped tracer and a
    fresh metrics registry and attaches the serialized span tree and
    registry snapshot to the returned :class:`RunResult` records (the
    per-algorithm run span feeds the saved benchmark JSON).

    ``workers`` sizes the pool for algorithms that parallelise (currently
    ``"PAR"``; serial algorithms ignore it) and is recorded on their
    :class:`RunResult` so persisted measurements carry their parallelism.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    options = dict(algorithm_options or {})
    results: List[RunResult] = []
    tracer = obs_tracing.get_tracer()
    for name in algorithms:
        engine_options = dict(options.get(name, {}))
        if workers is not None and name in PARALLEL_ALGORITHMS:
            engine_options.setdefault("workers", workers)
        result_workers = engine_options.get("workers")
        best: Optional[RunResult] = None
        for _ in range(repeats):
            engine = make_algorithm(name, gamma, **engine_options)
            trace_payload = None
            metrics_payload = None
            with tracer.span(
                "bench.run", experiment=experiment, algorithm=name
            ):
                if collect_obs:
                    scoped_tracer = obs_tracing.Tracer()
                    with obs_metrics.use_registry() as registry:
                        with obs_tracing.use_tracer(scoped_tracer):
                            started = time.perf_counter()
                            outcome = engine.compute(dataset)
                            elapsed = time.perf_counter() - started
                        if outcome.trace is not None:
                            trace_payload = outcome.trace.to_dict()
                        metrics_payload = registry.as_dict()
                else:
                    started = time.perf_counter()
                    outcome = engine.compute(dataset)
                    elapsed = time.perf_counter() - started
            measured = RunResult(
                experiment=experiment,
                params=dict(params or {}),
                algorithm=name,
                elapsed_seconds=elapsed,
                group_comparisons=outcome.stats.group_comparisons,
                record_pairs=outcome.stats.record_pairs_examined,
                skyline_size=len(outcome),
                skyline_keys=frozenset(outcome.keys),
                trace=trace_payload,
                metrics=metrics_payload,
                workers=result_workers,
            )
            if best is None or measured.elapsed_seconds < best.elapsed_seconds:
                best = measured
        assert best is not None
        results.append(best)

    if verify_consistency and results:
        reference = results[0]
        for other in results[1:]:
            if other.skyline_keys != reference.skyline_keys:
                raise AssertionError(
                    f"{other.algorithm} disagrees with {reference.algorithm}"
                    f" on {experiment} {params}:"
                    f" {sorted(other.skyline_keys ^ reference.skyline_keys)}"
                )
    return results


def sweep(
    experiment: str,
    parameter: str,
    values: Iterable,
    dataset_factory: Callable[[object], GroupedDataset],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    gamma: float = 0.5,
    algorithm_options: Optional[Mapping[str, Mapping]] = None,
    extra_params: Optional[Mapping[str, object]] = None,
    repeats: int = 1,
    collect_obs: bool = False,
    workers: Optional[int] = None,
) -> List[RunResult]:
    """Run ``algorithms`` for each value of a swept parameter.

    ``dataset_factory`` builds the workload for one sweep value.  Returns
    the flat list of measurements (pivot them with
    :func:`repro.harness.reporting.series_table`).
    """
    results: List[RunResult] = []
    for value in values:
        dataset = dataset_factory(value)
        params = {parameter: value, **dict(extra_params or {})}
        results.extend(
            run_algorithms(
                dataset,
                algorithms=algorithms,
                gamma=gamma,
                experiment=experiment,
                params=params,
                algorithm_options=algorithm_options,
                repeats=repeats,
                collect_obs=collect_obs,
                workers=workers,
            )
        )
    return results
