"""Turning raw measurements into the paper's tables and series.

``series_table`` pivots :class:`~repro.harness.runner.RunResult` records
into one row per sweep value and one column per algorithm — exactly the
series a figure plots; ``format_figure`` wraps it with a caption and the
paper-expected shape so benchmark output is self-describing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..relational.table import Table
from .runner import RunResult

__all__ = [
    "series_table",
    "format_figure",
    "speedup_table",
    "shape_checks",
    "counter_delta_table",
]


def _order_preserving_unique(items: Sequence) -> List:
    seen = set()
    unique = []
    for item in items:
        if item not in seen:
            seen.add(item)
            unique.append(item)
    return unique


def series_table(
    results: Sequence[RunResult],
    parameter: str,
    metric: str = "elapsed_seconds",
    formatter: Optional[Callable[[float], object]] = None,
) -> Table:
    """Pivot measurements into ``parameter`` rows x algorithm columns.

    ``metric`` is any :class:`RunResult` numeric attribute
    (``elapsed_seconds``, ``group_comparisons``, ``record_pairs``,
    ``skyline_size``).
    """
    if formatter is None:
        formatter = (
            (lambda v: round(v, 4))
            if metric == "elapsed_seconds"
            else (lambda v: v)
        )
    algorithms = _order_preserving_unique([r.algorithm for r in results])
    values = _order_preserving_unique([r.params.get(parameter) for r in results])
    cells: Dict[Tuple[object, str], object] = {}
    for result in results:
        key = (result.params.get(parameter), result.algorithm)
        cells[key] = formatter(getattr(result, metric))
    rows = [
        [value, *(cells.get((value, a)) for a in algorithms)]
        for value in values
    ]
    return Table([parameter, *algorithms], rows)


def speedup_table(
    results: Sequence[RunResult],
    parameter: str,
    baseline: str,
) -> Table:
    """Speed-up of every algorithm relative to ``baseline`` (x times)."""
    algorithms = _order_preserving_unique([r.algorithm for r in results])
    if baseline not in algorithms:
        raise ValueError(f"baseline {baseline!r} not among {algorithms}")
    values = _order_preserving_unique([r.params.get(parameter) for r in results])
    timing: Dict[Tuple[object, str], float] = {
        (r.params.get(parameter), r.algorithm): r.elapsed_seconds
        for r in results
    }
    others = [a for a in algorithms if a != baseline]
    rows = []
    for value in values:
        base = timing.get((value, baseline))
        row: List[object] = [value]
        for algorithm in others:
            measured = timing.get((value, algorithm))
            if base is None or measured is None or measured == 0:
                row.append(None)
            else:
                row.append(round(base / measured, 2))
        rows.append(row)
    return Table([parameter, *(f"{a} vs {baseline}" for a in others)], rows)


def counter_delta_table(
    baseline: Sequence[RunResult],
    contender: Sequence[RunResult],
    metrics: Sequence[str] = ("group_comparisons", "record_pairs"),
) -> Table:
    """Diff work counters between two runs of the same measurement points.

    Matches results by (experiment, params, algorithm) and reports, for each
    requested counter, the before/after values and the ratio — so a perf PR
    can show it *reduced work*, not just that the machine was faster.  Rows
    where every counter is unchanged are omitted.
    """

    def key_of(result: RunResult):
        return (
            result.experiment,
            tuple(sorted((k, str(v)) for k, v in result.params.items())),
            result.algorithm,
        )

    contenders = {key_of(r): r for r in contender}
    columns: List[str] = ["experiment", "algorithm", "params"]
    for metric in metrics:
        columns.extend(
            [f"{metric} before", f"{metric} after", f"{metric} ratio"]
        )
    rows: List[List[object]] = []
    for before in baseline:
        after = contenders.get(key_of(before))
        if after is None:
            continue
        changed = False
        row: List[object] = [
            before.experiment,
            before.algorithm,
            ",".join(f"{k}={v}" for k, v in before.params.items()),
        ]
        for metric in metrics:
            old = getattr(before, metric)
            new = getattr(after, metric)
            ratio = round(new / old, 3) if old else None
            row.extend([old, new, ratio])
            changed = changed or old != new
        if changed:
            rows.append(row)
    return Table(columns, rows)


def format_figure(
    figure_id: str,
    caption: str,
    expectation: str,
    tables: Sequence[Tuple[str, Table]],
) -> str:
    """Self-describing benchmark report for one paper figure.

    ``tables`` is a list of ``(subtitle, table)`` pairs (e.g. one table per
    data distribution, as in Figures 10-12).
    """
    lines = [
        "=" * 72,
        f"{figure_id}: {caption}",
        f"paper shape: {expectation}",
        "=" * 72,
    ]
    for subtitle, table in tables:
        if subtitle:
            lines.append(f"-- {subtitle} --")
        lines.append(table.to_text())
        lines.append("")
    return "\n".join(lines)


def shape_checks(
    results: Sequence[RunResult],
    parameter: str,
    faster: str,
    slower: str,
    at_least_fraction: float = 0.5,
) -> bool:
    """Does ``faster`` beat ``slower`` on at least a fraction of points?

    Used by the benchmark suite to assert the paper's qualitative shapes
    (who wins) without pinning absolute timings.
    """
    timing: Dict[Tuple[object, str], float] = {
        (r.params.get(parameter), r.algorithm): r.elapsed_seconds
        for r in results
    }
    values = _order_preserving_unique([r.params.get(parameter) for r in results])
    wins = 0
    counted = 0
    for value in values:
        fast = timing.get((value, faster))
        slow = timing.get((value, slower))
        if fast is None or slow is None:
            continue
        counted += 1
        if fast <= slow:
            wins += 1
    if counted == 0:
        return False
    return wins / counted >= at_least_fraction
