"""One function per paper figure/table: the reproduction experiments.

Each ``figure_*`` function builds the workloads of one figure of the
evaluation section, runs the paper's algorithms, and returns a
:class:`FigureReport` holding the raw measurements plus a self-describing
text report (series tables in the figure's layout and the paper-expected
shape).  The ``benchmarks/`` suite and the CLI both dispatch through the
:data:`FIGURES` registry.

Workload sizes honour the paper's defaults (10 000 records, 100 records per
class, spread 20 %, d=5, γ=.5) at ``scale="paper"`` and shrink
proportionally at ``"small"`` (default) and ``"smoke"`` so the whole suite
runs in minutes on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.execution import ExecutionConfig
from ..core.gamma import dominance_probability
from ..data.movies import directors_dataset
from ..data.nba import STAT_COLUMNS, nba_table
from ..data.synthetic import SyntheticSpec, generate_grouped
from ..relational.operators import grouped_dataset_from_table
from ..relational.table import Table
from .plotting import chart_from_results
from .reporting import format_figure, series_table, speedup_table
from .runner import RunResult, run_algorithms, sweep

__all__ = ["FigureReport", "FIGURES", "SCALES", "run_figure"]

#: Scale factors applied to the paper's workload sizes.
SCALES: Dict[str, float] = {"smoke": 0.04, "small": 0.2, "paper": 1.0}

MAIN_ALGORITHMS = ("NL", "TR", "SI", "IN", "LO")
DISTRIBUTION_PANELS = ("anticorrelated", "independent", "correlated")


@dataclass
class FigureReport:
    """Measurements and rendered report for one figure."""

    figure_id: str
    caption: str
    expectation: str
    results: List[RunResult] = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _factor(scale: str) -> float:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def _scaled(value: int, factor: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * factor)))


def _synthetic(
    n_records: int,
    distribution: str,
    dimensions: int = 5,
    avg_group_size: int = 100,
    group_spread: float = 0.2,
    size_distribution: str = "uniform",
    seed: int = 0,
) -> "SyntheticSpec":
    return SyntheticSpec(
        n_records=n_records,
        avg_group_size=avg_group_size,
        dimensions=dimensions,
        distribution=distribution,
        group_spread=group_spread,
        size_distribution=size_distribution,
        seed=seed,
    )




class _TextBlock:
    """Adapts pre-rendered text (e.g. an ASCII chart) to the report layout."""

    def __init__(self, text: str):
        self._text = text

    def to_text(self) -> str:
        return self._text


def _chart_table(results, parameter: str) -> "_TextBlock":
    return _TextBlock(chart_from_results(results, parameter))


def _distribution_panels(
    figure_id: str,
    caption: str,
    expectation: str,
    parameter: str,
    values: Sequence,
    spec_for: Callable[[str, object], SyntheticSpec],
    algorithms: Sequence[str] = MAIN_ALGORITHMS,
) -> FigureReport:
    """Shared driver for the three-panel figures (10, 11, 12)."""
    all_results: List[RunResult] = []
    tables: List[Tuple[str, Table]] = []
    for distribution in DISTRIBUTION_PANELS:
        results = sweep(
            experiment=figure_id,
            parameter=parameter,
            values=values,
            dataset_factory=lambda v, d=distribution: generate_grouped(
                spec_for(d, v)
            ),
            algorithms=algorithms,
            extra_params={"distribution": distribution},
        )
        all_results.extend(results)
        tables.append((distribution, series_table(results, parameter)))
        tables.append(
            (f"{distribution} (chart)", _chart_table(results, parameter))
        )
    report = FigureReport(figure_id, caption, expectation, all_results)
    report.text = format_figure(figure_id, caption, expectation, tables)
    return report


# ----------------------------------------------------------------------
# Table 2 (the motivating probabilities)
# ----------------------------------------------------------------------


def table2(scale: str = "small") -> FigureReport:
    """Table 2: p(S > R) for the director examples of Figure 5."""
    del scale  # the curated dataset has one size
    dataset = directors_dataset()
    pairs = [
        ("Tarantino", "Wiseau"),
        ("Tarantino", "Fleischer"),
        ("Tarantino", "Jackson"),
        ("Wiseau", "Tarantino"),
        ("Fleischer", "Tarantino"),
        ("Jackson", "Tarantino"),
    ]
    rows = []
    for s, r in pairs:
        p = dominance_probability(dataset[s], dataset[r])
        rows.append((s, r, f"{float(p):.2f}", f"{p.numerator}/{p.denominator}"))
    table = Table(["S", "R", "p(S>R)", "exact"], rows)
    caption = "p(S>R) for the Figure-5 director examples"
    expectation = "1.00 / .94 / .68 / .00 / .06 / .26"
    report = FigureReport("table2", caption, expectation)
    report.text = format_figure("table2", caption, expectation, [("", table)])
    return report


# ----------------------------------------------------------------------
# Figure 8: SQL scalability
# ----------------------------------------------------------------------


def figure8(scale: str = "small") -> FigureReport:
    """Figure 8: scalability of the direct SQL implementation (sqlite)."""
    factor = _factor(scale)
    ns = [_scaled(n, factor, 100) for n in (1000, 2000, 4000, 8000)]
    results = sweep(
        experiment="fig8",
        parameter="n_records",
        values=ns,
        dataset_factory=lambda n: generate_grouped(
            _synthetic(n, "independent", dimensions=2, avg_group_size=50)
        ),
        algorithms=("SQL", "NL", "LO"),
    )
    caption = "run time vs. number of records, Algorithm-1 SQL on sqlite"
    expectation = (
        "SQL grows super-linearly (quadratic self-join); the native"
        " algorithms beat it by 1-2 orders of magnitude"
    )
    tables = [
        ("run time (s)", series_table(results, "n_records")),
        ("speed-up over SQL", speedup_table(results, "n_records", "SQL")),
        ("chart", _chart_table(results, "n_records")),
    ]
    report = FigureReport("fig8", caption, expectation, results)
    report.text = format_figure("fig8", caption, expectation, tables)
    return report


# ----------------------------------------------------------------------
# Figure 10: dimensionality
# ----------------------------------------------------------------------


def figure10(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    n = _scaled(10_000, factor, 400)
    group_size = _scaled(100, max(factor, 0.2), 10)
    return _distribution_panels(
        figure_id="fig10",
        caption="run time vs. dimensionality (three data distributions)",
        expectation=(
            "index-based IN/LO consistently fastest, biggest gap on"
            " anti-correlated data; TR/SI also improve on independent and"
            " correlated data; NL slowest"
        ),
        parameter="dimensions",
        values=[2, 3, 4, 5, 6, 7],
        spec_for=lambda dist, d: _synthetic(
            n, dist, dimensions=int(d), avg_group_size=group_size
        ),
    )


# ----------------------------------------------------------------------
# Figure 11: group overlap
# ----------------------------------------------------------------------


def figure11(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    n = _scaled(10_000, factor, 400)
    group_size = _scaled(100, max(factor, 0.2), 10)
    return _distribution_panels(
        figure_id="fig11",
        caption="run time vs. group spread/overlap (three distributions)",
        expectation=(
            "with large overlap the window query returns almost all groups"
            " and pure indexing (IN) loses its edge, possibly falling behind"
            " NL; LO stays competitive thanks to the bbox pre-counting"
        ),
        parameter="group_spread",
        values=[0.1, 0.2, 0.4, 0.6, 0.8],
        spec_for=lambda dist, spread: _synthetic(
            n, dist, avg_group_size=group_size, group_spread=float(spread)
        ),
    )


# ----------------------------------------------------------------------
# Figure 12: scalability in the number of records
# ----------------------------------------------------------------------


def figure12(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    ns = [_scaled(n, factor, 200) for n in (2_500, 5_000, 10_000, 20_000)]
    group_size = _scaled(100, max(factor, 0.2), 10)
    return _distribution_panels(
        figure_id="fig12",
        caption="run time vs. number of records (three distributions)",
        expectation=(
            "index methods outperform the rest on anti-correlated data;"
            " the gap narrows on independent and correlated data"
        ),
        parameter="n_records",
        values=ns,
        spec_for=lambda dist, n: _synthetic(
            int(n), dist, avg_group_size=group_size
        ),
    )


# ----------------------------------------------------------------------
# Figure 13: Zipfian sizes, index range, records per class
# ----------------------------------------------------------------------


def figure13a(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    ns = [_scaled(n, factor, 200) for n in (2_500, 5_000, 10_000, 20_000)]
    group_size = _scaled(100, max(factor, 0.2), 10)
    results = sweep(
        experiment="fig13a",
        parameter="n_records",
        values=ns,
        dataset_factory=lambda n: generate_grouped(
            _synthetic(
                int(n),
                "anticorrelated",
                avg_group_size=group_size,
                size_distribution="zipf",
            )
        ),
        algorithms=MAIN_ALGORITHMS,
    )
    caption = "scalability with Zipfian records-per-class, anti-correlated"
    expectation = (
        "the sort-based method (small-groups-first global optimisation)"
        " improves under heavy-tailed group sizes but stays behind the"
        " index-based methods"
    )
    report = FigureReport("fig13a", caption, expectation, results)
    report.text = format_figure(
        "fig13a", caption, expectation,
        [
            ("run time (s)", series_table(results, "n_records")),
            ("chart", _chart_table(results, "n_records")),
        ],
    )
    return report


def figure13b(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    ns = [_scaled(n, factor, 200) for n in (5_000, 10_000, 20_000, 40_000)]
    group_size = _scaled(100, max(factor, 0.2), 10)
    results = sweep(
        experiment="fig13b",
        parameter="n_records",
        values=ns,
        dataset_factory=lambda n: generate_grouped(
            _synthetic(int(n), "anticorrelated", avg_group_size=group_size)
        ),
        algorithms=("IN", "LO"),
    )
    caption = "index-based methods over a wider record range, anti-correlated"
    expectation = "IN and LO scale smoothly; LO at or below IN"
    report = FigureReport("fig13b", caption, expectation, results)
    report.text = format_figure(
        "fig13b", caption, expectation,
        [
            ("run time (s)", series_table(results, "n_records")),
            ("chart", _chart_table(results, "n_records")),
        ],
    )
    return report


def figure13c(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    n = _scaled(10_000, factor, 500)
    sizes = [10, 25, 50, 100, 250]
    results = sweep(
        experiment="fig13c",
        parameter="records_per_class",
        values=sizes,
        dataset_factory=lambda size: generate_grouped(
            _synthetic(n, "anticorrelated", avg_group_size=int(size))
        ),
        algorithms=MAIN_ALGORITHMS,
    )
    caption = "run time vs. records per class (fixed total), anti-correlated"
    expectation = (
        "small classes mean many groups (external cost dominates); large"
        " classes mean quadratic internal cost — the optimised algorithms"
        " flatten the trade-off the baseline cannot"
    )
    report = FigureReport("fig13c", caption, expectation, results)
    report.text = format_figure(
        "fig13c", caption, expectation,
        [
            ("run time (s)", series_table(results, "records_per_class")),
            ("chart", _chart_table(results, "records_per_class")),
        ],
    )
    return report


# ----------------------------------------------------------------------
# Figure 14: NBA data, four grouping granularities
# ----------------------------------------------------------------------

NBA_GROUPINGS: Tuple[Tuple[str, Tuple[str, ...], int], ...] = (
    # (panel name, grouping columns, number of skyline attributes)
    ("by team, 8 attrs", ("team",), 8),
    ("by year, 4 attrs", ("year",), 4),
    ("by team+year, 4 attrs", ("team", "year"), 4),
    ("by player, 8 attrs", ("player",), 8),
)


def figure14(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    rows = _scaled(15_000, factor, 400)
    table = nba_table(seed=7, target_rows=rows)
    include_sql = rows <= 4_000
    algorithms = (("SQL",) if include_sql else ()) + MAIN_ALGORITHMS
    all_results: List[RunResult] = []
    tables: List[Tuple[str, Table]] = []
    for panel, grouping, attr_count in NBA_GROUPINGS:
        measures = list(STAT_COLUMNS[:attr_count])
        dataset = grouped_dataset_from_table(table, list(grouping), measures)
        results = run_algorithms(
            dataset,
            algorithms=algorithms,
            experiment="fig14",
            params={"grouping": panel, "groups": len(dataset)},
        )
        all_results.extend(results)
        tables.append((panel, series_table(results, "grouping")))
    caption = (
        f"NBA player-season statistics ({rows} rows, synthetic stand-in),"
        " grouped four ways"
    )
    expectation = (
        "coarse groupings (team/year): up to two orders of magnitude over"
        " the baseline; many tiny groups with 8 attributes (player): only"
        " ~15% improvement"
    )
    report = FigureReport("fig14", caption, expectation, all_results)
    report.text = format_figure("fig14", caption, expectation, tables)
    return report


# ----------------------------------------------------------------------
# Ablations (design-choice toggles, DESIGN.md section 6)
# ----------------------------------------------------------------------


def ablations(scale: str = "small") -> FigureReport:
    factor = _factor(scale)
    n = _scaled(6_000, factor, 300)
    group_size = _scaled(60, max(factor, 0.2), 10)
    dataset = generate_grouped(
        _synthetic(n, "anticorrelated", avg_group_size=group_size)
    )
    # A fine block size so the stopping rule has sub-group granularity even
    # on the scaled-down workload (with the default 1024-pair blocks a small
    # group fits in one block and the rule never gets a chance to stop).
    variants: List[Tuple[str, str, Dict]] = [
        ("NL", "NL / stop rule ON", {"block_size": 64}),
        ("NL", "NL / stop rule OFF", {"use_stopping_rule": False}),
        ("TR", "TR / paper pruning", {"prune_policy": "paper"}),
        ("TR", "TR / safe pruning", {"prune_policy": "safe"}),
        ("SI", "SI / size+corner key", {"sort_key": "size_corner"}),
        ("SI", "SI / corner-distance key", {"sort_key": "corner_distance"}),
        ("IN", "IN / r-tree", {"index_backend": "rtree"}),
        ("IN", "IN / grid", {"index_backend": "grid"}),
        ("IN", "IN / bbox counting ON", {"use_bbox": True}),
        ("LO", "LO (IN + bbox)", {}),
        ("AD", "AD (adaptive dispatch)", {}),
    ]
    results: List[RunResult] = []
    for algorithm, label, options in variants:
        measured = run_algorithms(
            dataset,
            algorithms=(algorithm,),
            experiment="ablations",
            params={"variant": label},
            algorithm_options={algorithm: options},
        )[0]
        measured.algorithm = label
        results.append(measured)
    rows = [
        (
            r.algorithm,
            round(r.elapsed_seconds, 4),
            r.group_comparisons,
            r.record_pairs,
            r.skyline_size,
        )
        for r in results
    ]
    table = Table(
        ["variant", "time (s)", "group cmp", "record pairs", "skyline"], rows
    )
    caption = "optimisation toggles on one anti-correlated workload"
    expectation = (
        "stopping rule and bbox counting cut record pairs; paper pruning"
        " cuts group comparisons; results identical across variants here"
    )
    report = FigureReport("ablations", caption, expectation, results)
    report.text = format_figure(
        "ablations", caption, expectation, [("", table)]
    )
    return report


def extensions(scale: str = "small") -> FigureReport:
    """Extension features timed against the batch LO baseline."""
    factor = _factor(scale)
    n = _scaled(5_000, factor, 300)
    group_size = _scaled(50, max(factor, 0.2), 10)
    dataset = generate_grouped(
        _synthetic(n, "anticorrelated", dimensions=3,
                   avg_group_size=group_size)
    )

    from ..core.anytime import AnytimeAggregateSkyline
    from ..core.layers import skyline_layers
    from ..core.partitioned import partitioned_aggregate_skyline
    from ..core.ranking import compute_gamma_profile
    from ..core.result import Timer
    from ..core.sampling import approximate_aggregate_skyline
    from ..core.algorithms import make_algorithm

    rows = []

    def measure(label, thunk, describe):
        with Timer() as timer:
            value = thunk()
        rows.append((label, round(timer.elapsed, 4), describe(value)))
        return value

    baseline = measure(
        "LO (batch baseline)",
        lambda: make_algorithm("LO", 0.5).compute(dataset),
        lambda r: f"{len(r)} groups",
    )
    measure(
        "anytime (run to exact)",
        lambda: AnytimeAggregateSkyline(dataset, 0.5).run(),
        lambda r: f"{len(r)} groups",
    )
    measure(
        "partitioned (4 parts)",
        lambda: partitioned_aggregate_skyline(dataset, partitions=4),
        lambda r: f"{len(r)} groups",
    )
    measure(
        "sampled (1024/pair)",
        lambda: approximate_aggregate_skyline(dataset, samples=1024),
        lambda r: f"{len(r)} groups (superset)",
    )
    measure(
        "gamma profile (pruned)",
        lambda: compute_gamma_profile(dataset),
        lambda p: f"{len(p)} degrees",
    )
    measure(
        "skyline layers",
        lambda: skyline_layers(dataset),
        lambda l: f"{len(l)} layers",
    )

    table = Table(["feature", "time (s)", "result"], rows)
    caption = (
        f"extension features on one anti-correlated workload"
        f" ({dataset.total_records} records, {len(dataset)} groups)"
    )
    expectation = (
        "anytime/partitioned/sampled reproduce or bound the batch result;"
        " profile and layers add ranking on top"
    )
    report = FigureReport("extensions", caption, expectation)
    report.text = format_figure(
        "extensions", caption, expectation, [("", table)]
    )
    del baseline
    return report


def parallel_scaling(
    scale: str = "small", workers: "int | None" = None
) -> FigureReport:
    """Extension: serial ``NL`` vs ``PAR`` at increasing worker counts.

    A >= 200-group anti-correlated workload is solved once by the serial
    nested loop and once per worker count by the parallel chunked executor
    (deterministic two-phase mode, so every run returns the byte-identical
    skyline and the identical record-pair count — only the wall clock may
    move).  ``workers`` extends the default ``1, 2, 4`` ladder with an
    explicit top rung (``aggskyline experiment parallel --workers 8``).
    """
    from ..relational.table import Table as _Table

    factor = _factor(scale)
    n_records = _scaled(10_000, factor, minimum=4_000)
    group_size = max(10, n_records // 200)  # at least ~200 groups
    spec = _synthetic(
        n_records, "anticorrelated", dimensions=5, avg_group_size=group_size
    )
    dataset = generate_grouped(spec)
    worker_counts = sorted({1, 2, 4} | ({workers} if workers else set()))

    results = run_algorithms(
        dataset,
        algorithms=("NL",),
        experiment="parallel",
        params={"workers": 0, "groups": len(dataset)},
    )
    for count in worker_counts:
        results.extend(
            run_algorithms(
                dataset,
                algorithms=("PAR",),
                experiment="parallel",
                params={"workers": count, "groups": len(dataset)},
                execution=ExecutionConfig(workers=count),
            )
        )

    serial = results[0]
    rows = [["NL (serial)", round(serial.elapsed_seconds, 4),
             serial.record_pairs, serial.skyline_size, 1.0]]
    identical = True
    for measured in results[1:]:
        rows.append(
            [
                f"PAR workers={measured.workers}",
                round(measured.elapsed_seconds, 4),
                measured.record_pairs,
                measured.skyline_size,
                round(serial.elapsed_seconds / measured.elapsed_seconds, 2)
                if measured.elapsed_seconds
                else None,
            ]
        )
        identical = identical and (
            measured.skyline_keys == serial.skyline_keys
            and measured.record_pairs == serial.record_pairs
        )
    table = _Table(
        ["configuration", "time (s)", "record pairs", "skyline", "speed-up"],
        rows,
    )
    caption = (
        f"parallel group-pair execution on {len(dataset)} groups"
        f" ({dataset.total_records} records, anti-correlated)"
    )
    expectation = (
        "identical skylines and record-pair counts at every worker count;"
        " wall-clock drops as workers are added (hardware permitting)"
    )
    report = FigureReport("parallel", caption, expectation, results=results)
    body = [("serial vs parallel", table)]
    report.text = format_figure("parallel", caption, expectation, body)
    report.text += (
        "\nresults identical across worker counts: "
        + ("yes" if identical else "NO (investigate!)")
        + "\n"
    )
    return report


FIGURES: Dict[str, Callable[[str], FigureReport]] = {
    "table2": table2,
    "fig8": figure8,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig13a": figure13a,
    "fig13b": figure13b,
    "fig13c": figure13c,
    "fig14": figure14,
    "ablations": ablations,
    "extensions": extensions,
    "parallel": parallel_scaling,
}

#: Figures whose builder accepts a ``workers`` keyword.
_WORKER_AWARE_FIGURES = frozenset({"parallel"})


def run_figure(
    figure_id: str, scale: str = "small", workers: "int | None" = None
) -> FigureReport:
    """Regenerate one figure by id (see :data:`FIGURES`).

    ``workers`` is forwarded to worker-aware figures (currently
    ``"parallel"``) and ignored by the serial reproductions.
    """
    try:
        builder = FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    if workers is not None and figure_id in _WORKER_AWARE_FIGURES:
        return builder(scale, workers=workers)
    return builder(scale)
