"""JSON persistence for benchmark measurements.

Regenerated figures are worth keeping: the text reports are for humans,
this module stores the raw :class:`~repro.harness.runner.RunResult` records
machine-readably so later sessions (or plotting scripts) can compare runs
without re-measuring.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from .runner import RunResult

__all__ = [
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
]

_FORMAT_VERSION = 1


def _result_to_dict(result: RunResult, include_obs: bool = True) -> dict:
    data = {
        "experiment": result.experiment,
        "params": dict(result.params),
        "algorithm": result.algorithm,
        "elapsed_seconds": result.elapsed_seconds,
        "group_comparisons": result.group_comparisons,
        "record_pairs": result.record_pairs,
        "skyline_size": result.skyline_size,
        # frozensets are not JSON; keys are stored sorted by repr so the
        # output is deterministic.
        "skyline_keys": sorted(map(str, result.skyline_keys)),
    }
    if result.workers is not None:
        # Worker-pool size of parallel measurements; omitted (not null) for
        # serial runs so pre-parallel files round-trip byte-identically.
        data["workers"] = result.workers
    if result.execution is not None:
        # Compact ExecutionConfig snapshot (scheduler, shm, ...); optional
        # like "workers" so pre-ExecutionConfig files round-trip unchanged.
        data["execution"] = dict(result.execution)
    if result.plan is not None:
        # Planner decision (chosen algorithm, candidate costs, statistics
        # snapshot); optional so pre-planner files round-trip unchanged.
        data["plan"] = dict(result.plan)
    if include_obs:
        # Observability payloads (collected with run_algorithms(...,
        # collect_obs=True)): span tree + metrics-registry snapshot, so
        # ``aggskyline compare`` can diff counters, not just wall-clock.
        if result.trace is not None:
            data["trace"] = result.trace
        if result.metrics is not None:
            data["metrics"] = result.metrics
    return data


def _result_from_dict(data: dict) -> RunResult:
    return RunResult(
        experiment=data["experiment"],
        params=dict(data["params"]),
        algorithm=data["algorithm"],
        elapsed_seconds=float(data["elapsed_seconds"]),
        group_comparisons=int(data["group_comparisons"]),
        record_pairs=int(data["record_pairs"]),
        skyline_size=int(data["skyline_size"]),
        skyline_keys=frozenset(data.get("skyline_keys", ())),
        trace=data.get("trace"),
        metrics=data.get("metrics"),
        workers=(
            int(data["workers"]) if data.get("workers") is not None else None
        ),
        execution=(
            dict(data["execution"]) if data.get("execution") is not None else None
        ),
        plan=(
            dict(data["plan"]) if data.get("plan") is not None else None
        ),
    )


def results_to_json(
    results: Sequence[RunResult], include_obs: bool = True
) -> str:
    """Serialise measurements (stable ordering, versioned envelope).

    ``include_obs=False`` strips the optional trace/metrics payloads for
    compact files.
    """
    payload = {
        "version": _FORMAT_VERSION,
        "results": [
            _result_to_dict(r, include_obs=include_obs) for r in results
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def results_from_json(text: str) -> List[RunResult]:
    """Parse measurements written by :func:`results_to_json`.

    Note: group keys come back as strings (JSON has no tuples); timing and
    counter fields round-trip exactly.
    """
    payload = json.loads(text)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version: {version!r}"
        )
    return [_result_from_dict(d) for d in payload["results"]]


def save_results(
    results: Sequence[RunResult],
    path: Union[str, Path],
    include_obs: bool = True,
) -> None:
    Path(path).write_text(
        results_to_json(results, include_obs=include_obs) + "\n"
    )


def load_results(path: Union[str, Path]) -> List[RunResult]:
    return results_from_json(Path(path).read_text())
