"""ASCII charts for benchmark reports.

The paper's figures are log-scale line plots of run time against a swept
parameter, one line per algorithm.  :func:`ascii_chart` renders the same
series as terminal art so `aggskyline experiment` output and the saved
``benchmarks/results/*.txt`` artifacts are readable without a plotting
stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_chart", "chart_from_results"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence,
    series: Dict[str, Sequence[Optional[float]]],
    height: int = 12,
    log_y: bool = True,
    y_label: str = "time (s)",
) -> str:
    """Render ``series`` (one line per key) over ``x_values``.

    ``None`` entries are skipped.  With ``log_y`` the vertical axis is
    logarithmic — the paper's convention, since the algorithms differ by
    orders of magnitude.
    """
    if height < 3:
        raise ValueError("height must be at least 3")
    points: List[float] = [
        v
        for values in series.values()
        for v in values
        if v is not None and v > 0
    ]
    if not points or not x_values:
        return "(no data)"

    transform = (lambda v: math.log10(v)) if log_y else (lambda v: v)
    lo = min(transform(v) for v in points)
    hi = max(transform(v) for v in points)
    if hi == lo:
        hi = lo + 1.0

    columns = len(x_values)
    col_width = max(7, max(len(str(x)) for x in x_values) + 2)
    width = columns * col_width
    grid = [[" "] * width for _ in range(height)]

    def row_of(value: float) -> int:
        scaled = (transform(value) - lo) / (hi - lo)
        return (height - 1) - int(round(scaled * (height - 1)))

    for series_index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for column, value in enumerate(values[:columns]):
            if value is None or value <= 0:
                continue
            # Stagger series horizontally inside the column so markers that
            # land on the same row remain individually visible.
            x = column * col_width + 1 + series_index % (col_width - 1)
            grid[row_of(value)][x] = marker

    def axis_value(row: int) -> float:
        scaled = (height - 1 - row) / (height - 1)
        raw = lo + scaled * (hi - lo)
        return 10**raw if log_y else raw

    lines = []
    for row in range(height):
        label = f"{axis_value(row):8.3g} |" if row % 3 == 0 else " " * 9 + "|"
        lines.append(label + "".join(grid[row]))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = " " * 10 + "".join(
        str(x).center(col_width) for x in x_values
    )
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{y_label} [{'log' if log_y else 'linear'}]   {legend}")
    return "\n".join(lines)


def chart_from_results(
    results,
    parameter: str,
    metric: str = "elapsed_seconds",
    **chart_options,
) -> str:
    """Build an :func:`ascii_chart` from harness RunResult records."""
    x_values: List = []
    series: Dict[str, List[Optional[float]]] = {}
    for result in results:
        x = result.params.get(parameter)
        if x not in x_values:
            x_values.append(x)
    for result in results:
        series.setdefault(result.algorithm, [None] * len(x_values))
    for result in results:
        column = x_values.index(result.params.get(parameter))
        series[result.algorithm][column] = float(getattr(result, metric))
    return ascii_chart(x_values, series, **chart_options)
