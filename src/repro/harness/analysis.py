"""Statistical analysis of benchmark measurements.

Used to turn "it looks quadratic" into a number: fit log-log growth
exponents of run time against a swept size parameter, and summarise
per-algorithm statistics across a sweep.  The figure benches use
:func:`growth_exponent` to assert, e.g., that the SQL baseline really
grows super-linearly (its self-join is quadratic in records).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .runner import RunResult

__all__ = ["growth_exponent", "AlgorithmSummary", "summarize"]


def growth_exponent(
    results: Sequence[RunResult],
    parameter: str,
    algorithm: str,
    metric: str = "elapsed_seconds",
) -> float:
    """Least-squares slope of ``log(metric)`` against ``log(parameter)``.

    An exponent of ~1 is linear scaling, ~2 quadratic.  Requires at least
    two sweep points with positive values.
    """
    points = [
        (float(r.params[parameter]), float(getattr(r, metric)))
        for r in results
        if r.algorithm == algorithm and parameter in r.params
    ]
    points = [(x, y) for x, y in points if x > 0 and y > 0]
    if len(points) < 2:
        raise ValueError(
            f"need at least two positive points for {algorithm!r};"
            f" got {len(points)}"
        )
    xs = [math.log(x) for x, _ in points]
    ys = [math.log(y) for _, y in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denominator = sum((x - mean_x) ** 2 for x in xs)
    if denominator == 0:
        raise ValueError("the swept parameter never changes")
    numerator = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    return numerator / denominator


@dataclass
class AlgorithmSummary:
    """Aggregate statistics of one algorithm over a sweep."""

    algorithm: str
    runs: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float
    total_group_comparisons: int
    total_record_pairs: int
    exponent: Optional[float] = None

    def as_row(self) -> tuple:
        return (
            self.algorithm,
            self.runs,
            round(self.total_seconds, 4),
            round(self.mean_seconds, 4),
            round(self.max_seconds, 4),
            self.total_group_comparisons,
            self.total_record_pairs,
            None if self.exponent is None else round(self.exponent, 2),
        )


def summarize(
    results: Sequence[RunResult],
    parameter: Optional[str] = None,
) -> List[AlgorithmSummary]:
    """Per-algorithm summaries; with ``parameter``, include the exponent."""
    by_algorithm: Dict[str, List[RunResult]] = {}
    for result in results:
        by_algorithm.setdefault(result.algorithm, []).append(result)
    summaries = []
    for algorithm, runs in by_algorithm.items():
        times = [r.elapsed_seconds for r in runs]
        exponent = None
        if parameter is not None:
            try:
                exponent = growth_exponent(runs, parameter, algorithm)
            except ValueError:
                exponent = None
        summaries.append(
            AlgorithmSummary(
                algorithm=algorithm,
                runs=len(runs),
                total_seconds=sum(times),
                mean_seconds=sum(times) / len(times),
                max_seconds=max(times),
                total_group_comparisons=sum(
                    r.group_comparisons for r in runs
                ),
                total_record_pairs=sum(r.record_pairs for r in runs),
                exponent=exponent,
            )
        )
    return summaries
