"""Figure 13(c): run time vs. records per class (fixed total records).

Paper shape: few records per class means many groups (quadratic external
cost); many records per class means few but expensive group comparisons
(quadratic internal cost).  The optimised algorithms flatten this trade-off
relative to the baseline.
"""

import pytest
from conftest import BENCH_SCALE, regenerate

from repro.core.algorithms import make_algorithm
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.experiments import SCALES
from repro.harness.runner import DEFAULT_ALGORITHMS


def test_fig13c_regenerate(benchmark):
    report = regenerate(benchmark, "fig13c")
    sizes = sorted({r.params["records_per_class"] for r in report.results})
    assert len(sizes) >= 4
    # Larger classes => fewer groups => fewer group comparisons for NL.
    nl = {
        r.params["records_per_class"]: r.group_comparisons
        for r in report.results
        if r.algorithm == "NL"
    }
    assert nl[sizes[0]] > nl[sizes[-1]]


@pytest.mark.parametrize("records_per_class", [10, 100])
@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig13c_extremes(benchmark, algorithm, records_per_class):
    """The two extreme class sizes: many tiny vs. few large groups."""
    factor = SCALES[BENCH_SCALE]
    n = max(500, int(10_000 * factor))
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=n,
            avg_group_size=records_per_class,
            dimensions=5,
            distribution="anticorrelated",
            seed=0,
        )
    )
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
