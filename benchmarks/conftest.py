"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_*`` module regenerates one table/figure of the paper.  Each
module contains:

* one ``test_<fig>_regenerate`` that runs the whole experiment under the
  ``benchmark`` fixture (a single round — the sweep itself is the workload),
  writes the figure's series to ``benchmarks/results/<fig>.txt`` and asserts
  the paper's qualitative *shape* (who wins, roughly by how much);
* per-algorithm micro-benchmarks on that figure's default workload point.

Scale: set ``REPRO_BENCH_SCALE`` to ``smoke`` (default here, seconds),
``small`` (default for the CLI, tens of seconds) or ``paper`` (the paper's
full sizes, minutes) before invoking
``pytest benchmarks/ --benchmark-only``.

Every regenerated figure also appends its per-point measurements into the
perf-history time series (``results/BENCH_<scale>.json``, or the file
named by ``$REPRO_PERF_HISTORY``), so successive benchmark runs build the
series that ``repro perf report`` / ``repro perf check`` analyse; see
``docs/benchmarking.md``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.experiments import run_figure
from repro.obs.perfhistory import PerfHistory

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return BENCH_SCALE


def perf_history() -> PerfHistory:
    """The perf-history file benchmark runs append to."""
    override = os.environ.get("REPRO_PERF_HISTORY")
    if override:
        return PerfHistory(override)
    return PerfHistory(RESULTS_DIR / f"BENCH_{BENCH_SCALE}.json")


def record_perf_history(report) -> None:
    """Append one entry per figure measurement to the perf history.

    The series "fingerprint" is the workload point — experiment, scale and
    sweep parameters — which is what makes two runs of the same figure
    comparable across sessions; the execution dict keeps pooled and serial
    measurements in separate series.
    """
    history = perf_history()
    label = os.environ.get("REPRO_PERF_LABEL", "")
    for result in report.results:
        fingerprint = "{}@{}:{}".format(
            result.experiment,
            BENCH_SCALE,
            json.dumps(result.params, sort_keys=True, default=str),
        )
        history.record(
            fingerprint,
            result.algorithm,
            result.elapsed_seconds,
            execution=result.execution or {},
            counters={
                "group_comparisons": result.group_comparisons,
                "record_pairs": result.record_pairs,
            },
            label=label,
        )


def regenerate(benchmark, figure_id: str):
    """Run one figure experiment under the benchmark fixture, save report."""
    report = benchmark.pedantic(
        run_figure, args=(figure_id, BENCH_SCALE), iterations=1, rounds=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"{figure_id}_{BENCH_SCALE}.txt"
    out_path.write_text(report.text + "\n")
    if report.results:
        from repro.harness.persistence import save_results

        save_results(
            report.results, RESULTS_DIR / f"{figure_id}_{BENCH_SCALE}.json"
        )
        record_perf_history(report)
    return report


def make_workload(
    scale: str,
    distribution: str = "anticorrelated",
    dimensions: int = 5,
    group_spread: float = 0.2,
    size_distribution: str = "uniform",
    seed: int = 0,
):
    """The paper's default workload (10k records, 100/class) at ``scale``."""
    from repro.data.synthetic import SyntheticSpec, generate_grouped
    from repro.harness.experiments import SCALES

    factor = SCALES[scale]
    n = max(400, int(10_000 * factor))
    per_class = max(10, int(100 * max(factor, 0.2)))
    return generate_grouped(
        SyntheticSpec(
            n_records=n,
            avg_group_size=per_class,
            dimensions=dimensions,
            distribution=distribution,
            group_spread=group_spread,
            size_distribution=size_distribution,
            seed=seed,
        )
    )


def total_time(report, algorithm: str) -> float:
    return sum(
        r.elapsed_seconds for r in report.results if r.algorithm == algorithm
    )


def timings_by_algorithm(report):
    """{algorithm: [elapsed per sweep point]} for shape assertions."""
    timings = {}
    for result in report.results:
        timings.setdefault(result.algorithm, []).append(
            result.elapsed_seconds
        )
    return timings
