"""Table 2: domination probabilities for the director examples.

Regenerates the six p(S > R) values (1.00 / .94 / .68 / .00 / .06 / .26)
and micro-benchmarks the exact probability computation.
"""

from fractions import Fraction

from conftest import regenerate

from repro.core.gamma import dominance_probability
from repro.data.movies import directors_dataset


def test_table2_regenerate(benchmark):
    report = regenerate(benchmark, "table2")
    for value in ("1.00", "0.94", "0.68", "0.00", "0.06", "0.26"):
        assert value in report.text


def test_bench_dominance_probability(benchmark):
    dataset = directors_dataset()
    tarantino = dataset["Tarantino"]
    jackson = dataset["Jackson"]

    result = benchmark(dominance_probability, tarantino, jackson)
    assert result == Fraction(49, 72)
