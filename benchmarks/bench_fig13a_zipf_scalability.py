"""Figure 13(a): scalability with Zipfian records-per-class (anti-corr.).

Paper shape: under heavy-tailed group sizes the sort-based method (which
embodies the small-groups-first global optimisation) gains ground, while
the index-based methods stay ahead.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate, total_time

from repro.core.algorithms import make_algorithm
from repro.harness.runner import DEFAULT_ALGORITHMS


def test_fig13a_regenerate(benchmark):
    report = regenerate(benchmark, "fig13a")

    # Deterministic counters, not wall clock (smoke workloads are tiny and
    # per-call overhead swamps the timing): under Zipf sizes the sorted
    # method's pruning must cut both cost terms relative to the baseline,
    # and the index methods must cut the external term further.
    def totals(algorithm):
        runs = [r for r in report.results if r.algorithm == algorithm]
        return (
            sum(r.group_comparisons for r in runs),
            sum(r.record_pairs for r in runs),
        )

    nl_groups, nl_pairs = totals("NL")
    si_groups, si_pairs = totals("SI")
    in_groups, _ = totals("IN")
    assert si_groups <= nl_groups
    assert si_pairs <= nl_pairs
    assert in_groups <= si_groups
    # Timing claim only where it is measurable.
    if BENCH_SCALE != "smoke":
        assert min(
            total_time(report, "IN"), total_time(report, "LO")
        ) <= total_time(report, "NL")


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig13a_zipf_point(benchmark, algorithm):
    dataset = make_workload(BENCH_SCALE, size_distribution="zipf")
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
