"""Benchmarks for the extension features (not paper figures).

Measures the machinery DESIGN.md lists as extensions: the pruned γ-profile
vs. the brute-force one, incremental maintenance vs. batch recomputation,
anytime refinement overhead vs. one-shot LO, and partitioned execution.
"""

import pytest
from conftest import BENCH_SCALE, make_workload

from repro.core.algorithms import make_algorithm
from repro.core.anytime import AnytimeAggregateSkyline
from repro.core.api import gamma_profile
from repro.core.incremental import IncrementalAggregateSkyline
from repro.core.partitioned import partitioned_aggregate_skyline
from repro.core.ranking import compute_gamma_profile
from repro.core.representative import top_k_dominating_groups


@pytest.fixture(scope="module")
def workload():
    return make_workload(BENCH_SCALE, dimensions=3, seed=13)


def test_bench_gamma_profile_bruteforce(benchmark, workload):
    result = benchmark.pedantic(
        gamma_profile, args=(workload,), iterations=1, rounds=2
    )
    assert len(result) == len(workload)


def test_bench_gamma_profile_pruned(benchmark, workload):
    result = benchmark.pedantic(
        compute_gamma_profile, args=(workload,), iterations=1, rounds=2
    )
    assert len(result) == len(workload)


def test_bench_incremental_single_insert(benchmark, workload):
    sky = IncrementalAggregateSkyline(dimensions=workload.dimensions)
    for group in workload:
        sky.insert_many(group.key, group.values.tolist())

    record = [0.5] * workload.dimensions

    def insert_delete():
        sky.insert("hot_group", record)
        sky.delete("hot_group", record)

    benchmark.pedantic(insert_delete, iterations=5, rounds=3)
    assert "hot_group" not in sky.group_keys


def test_bench_batch_recompute_for_comparison(benchmark, workload):
    engine = make_algorithm("LO", 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(workload,), iterations=1, rounds=3
    )
    assert len(result) >= 1


def test_bench_anytime_full_run(benchmark, workload):
    def run():
        anytime = AnytimeAggregateSkyline(workload, 0.5, block_size=512)
        return anytime.run(pair_budget_per_step=50_000)

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert len(result) >= 1


@pytest.mark.parametrize("partitions", [1, 4])
def test_bench_partitioned(benchmark, workload, partitions):
    result = benchmark.pedantic(
        partitioned_aggregate_skyline,
        args=(workload,),
        kwargs={"partitions": partitions},
        iterations=1,
        rounds=2,
    )
    assert len(result) >= 1


def test_bench_top_k_dominating(benchmark, workload):
    result = benchmark.pedantic(
        top_k_dominating_groups,
        args=(workload, 5),
        iterations=1,
        rounds=2,
    )
    assert len(result) == 5


def test_bench_skyline_layers(benchmark, workload):
    from repro.core.layers import skyline_layers

    result = benchmark.pedantic(
        skyline_layers, args=(workload,), iterations=1, rounds=2
    )
    assert sum(len(layer) for layer in result) == len(workload)


def test_bench_approximate_skyline(benchmark, workload):
    from repro.core.sampling import approximate_aggregate_skyline

    result = benchmark.pedantic(
        approximate_aggregate_skyline,
        args=(workload,),
        kwargs={"samples": 1024},
        iterations=1,
        rounds=2,
    )
    assert len(result) >= 1


def test_extensions_agree_with_batch(workload):
    """All extension paths produce the Definition-2 result."""
    reference = make_algorithm("NL", 0.5, prune_policy="safe").compute(
        workload
    )
    anytime = AnytimeAggregateSkyline(workload, 0.5)
    assert set(anytime.run()) == reference.as_set()
    partitioned = partitioned_aggregate_skyline(workload, partitions=4)
    assert partitioned.as_set() == reference.as_set()
    profile = compute_gamma_profile(workload)
    assert set(profile.skyline_at(0.5)) == reference.as_set()
