"""Ablations: each optimisation toggle measured in isolation (DESIGN.md §6).

Not a paper figure, but the per-optimisation accounting behind Section 3.5's
summary of improvements: stopping rule, bounding-box counting, sort key,
index backend and pruning policy.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm


def test_ablations_regenerate(benchmark):
    report = regenerate(benchmark, "ablations")
    timings = {r.algorithm: r for r in report.results}

    stop_on = timings["NL / stop rule ON"]
    stop_off = timings["NL / stop rule OFF"]
    assert stop_on.record_pairs <= stop_off.record_pairs

    bbox_on = timings["IN / bbox counting ON"]
    bbox_off = timings["IN / r-tree"]
    assert bbox_on.record_pairs <= bbox_off.record_pairs

    paper = timings["TR / paper pruning"]
    safe = timings["TR / safe pruning"]
    assert paper.group_comparisons <= safe.group_comparisons
    # On this workload the pruning policies agree on the result.
    assert paper.skyline_keys == safe.skyline_keys


@pytest.mark.parametrize(
    "label,algorithm,options",
    [
        ("stop-rule-off", "NL", {"use_stopping_rule": False}),
        ("stop-rule-on", "NL", {}),
        ("bbox-off", "IN", {}),
        ("bbox-on", "IN", {"use_bbox": True}),
        ("prune-paper", "TR", {"prune_policy": "paper"}),
        ("prune-safe", "TR", {"prune_policy": "safe"}),
        ("sort-size-corner", "SI", {"sort_key": "size_corner"}),
        ("sort-corner-distance", "SI", {"sort_key": "corner_distance"}),
    ],
)
def test_bench_ablation_variants(benchmark, label, algorithm, options):
    dataset = make_workload(BENCH_SCALE)
    engine = make_algorithm(algorithm, 0.5, **options)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
