"""Figure 12: run time vs. number of records on three distributions.

Paper shape: index methods outperform the others on anti-correlated data;
the gap narrows on independent and correlated data.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm
from repro.harness.runner import DEFAULT_ALGORITHMS


def test_fig12_regenerate(benchmark):
    report = regenerate(benchmark, "fig12")

    anti = [
        r for r in report.results
        if r.params["distribution"] == "anticorrelated"
    ]
    largest_n = max(r.params["n_records"] for r in anti)
    at_largest = {
        r.algorithm: r.elapsed_seconds
        for r in anti
        if r.params["n_records"] == largest_n
    }
    assert min(at_largest["IN"], at_largest["LO"]) < at_largest["NL"]

    # Cost grows with n for the baseline (sanity of the sweep itself).
    nl = sorted(
        (r for r in anti if r.algorithm == "NL"),
        key=lambda r: r.params["n_records"],
    )
    assert nl[-1].elapsed_seconds > nl[0].elapsed_seconds


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig12_largest_point(benchmark, algorithm):
    dataset = make_workload(BENCH_SCALE)
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
