"""Serial-vs-parallel speedup of the pooled algorithms.

Two workloads, two claims:

* **PAR on anti-correlated** — regenerates the ``parallel`` comparison
  table (NL baseline vs ``PAR`` at 1/2/4 workers) and asserts the
  two-phase determinism contract: every configuration returns the same
  skyline and does exactly the same number of record-pair probes.
* **IN on Zipfian group sizes** — the work-stealing showcase.  The same
  indexed computation runs at 1/2/4 workers under both schedulers; the
  independent-candidate discipline means results *and* counters match
  the inline (``workers=1``) kernel bit-for-bit, while the stealing
  scheduler rebalances the skewed slabs.  Steal counts and per-config
  timings are written to ``benchmarks/results/``.

Wall-clock speedup assertions are gated on the host actually having the
cores — on a 1-core container the pool can only add overhead, which the
saved results record honestly.
"""

import os
import time

import pytest
from conftest import BENCH_SCALE, RESULTS_DIR, make_workload, regenerate

from repro import ExecutionConfig
from repro.core.algorithms import make_algorithm

MIN_CORES_FOR_SPEEDUP = 4
EXPECTED_SPEEDUP = 1.5
SCHEDULERS = ("static", "stealing")


def _times_by_workers(report):
    """{workers: elapsed} — the NL baseline is recorded as workers=0."""
    return {
        int(r.params["workers"]): r.elapsed_seconds for r in report.results
    }


# ----------------------------------------------------------------------
# PAR on anti-correlated: the two-phase determinism contract
# ----------------------------------------------------------------------


def test_parallel_regenerate(benchmark):
    report = regenerate(benchmark, "parallel")
    assert "results identical across worker counts: yes" in report.text

    skylines = {r.skyline_keys for r in report.results}
    assert len(skylines) == 1
    pair_counts = {r.record_pairs for r in report.results}
    assert len(pair_counts) == 1  # two-phase PAR does exactly NL's work

    # The workload must be wide enough for the claim to mean something.
    assert all(
        len(r.skyline_keys) <= r.params["groups"] for r in report.results
    )
    assert report.results[0].params["groups"] >= 200

    times = _times_by_workers(report)
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        speedup = times[0] / times[4]
        assert speedup >= EXPECTED_SPEEDUP, (
            f"PAR at 4 workers only {speedup:.2f}x over serial NL"
        )


@pytest.fixture(scope="module")
def workload():
    return make_workload(BENCH_SCALE, dimensions=3, seed=17)


@pytest.fixture(scope="module")
def reference(workload):
    return make_algorithm("NL", 0.5).compute(workload)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_par_by_worker_count(
    benchmark, workload, reference, workers, scheduler
):
    engine = make_algorithm(
        "PAR",
        0.5,
        execution=ExecutionConfig(workers=workers, scheduler=scheduler),
    )
    result = benchmark.pedantic(
        engine.compute, args=(workload,), iterations=1, rounds=2
    )
    assert result.as_set() == reference.as_set()
    assert (
        result.stats.record_pairs_examined
        == reference.stats.record_pairs_examined
    )
    run = getattr(engine, "last_pool_run", None)
    if run is not None:
        benchmark.extra_info["chunks"] = len(run.outcomes)
        benchmark.extra_info["steals"] = sum(
            1 for o in run.outcomes if o.stolen
        )


def test_bench_nl_baseline(benchmark, workload, reference):
    engine = make_algorithm("NL", 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(workload,), iterations=1, rounds=2
    )
    assert result.as_set() == reference.as_set()


# ----------------------------------------------------------------------
# IN on Zipfian group sizes: work stealing on skewed slabs
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def zipf_workload():
    return make_workload(
        BENCH_SCALE, dimensions=3, size_distribution="zipf", seed=23
    )


@pytest.fixture(scope="module")
def zipf_inline(zipf_workload):
    """The workers=1 inline kernel: the determinism-contract baseline."""
    return make_algorithm(
        "IN", 0.5, execution=ExecutionConfig(workers=1)
    ).compute(zipf_workload)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_in_zipf_by_worker_count(
    benchmark, zipf_workload, zipf_inline, workers, scheduler
):
    engine = make_algorithm(
        "IN",
        0.5,
        execution=ExecutionConfig(workers=workers, scheduler=scheduler),
    )
    result = benchmark.pedantic(
        engine.compute, args=(zipf_workload,), iterations=1, rounds=2
    )
    # independent-candidate discipline: identical skyline AND counters
    # for any worker count / scheduler.
    assert result.as_set() == zipf_inline.as_set()
    assert (
        result.stats.record_pairs_examined
        == zipf_inline.stats.record_pairs_examined
    )
    assert (
        result.stats.group_comparisons == zipf_inline.stats.group_comparisons
    )
    run = getattr(engine, "last_pool_run", None)
    if run is not None:
        benchmark.extra_info["chunks"] = len(run.outcomes)
        benchmark.extra_info["steals"] = sum(
            1 for o in run.outcomes if o.stolen
        )


def test_in_zipf_speedup_report(zipf_workload, zipf_inline):
    """Time serial IN vs the pool under both schedulers; save the table.

    The >= 1.5x assertion for 4 workers under stealing is gated on
    ``os.cpu_count() >= 4`` — anything smaller and the pool is pure
    overhead, which the saved report records honestly.
    """
    rows = []

    start = time.perf_counter()
    serial = make_algorithm("IN", 0.5).compute(zipf_workload)
    serial_t = time.perf_counter() - start
    assert serial.as_set() == zipf_inline.as_set()
    rows.append(("serial", "-", serial_t, 0, 0))

    stealing_4 = None
    for scheduler in SCHEDULERS:
        for workers in (1, 2, 4):
            engine = make_algorithm(
                "IN",
                0.5,
                execution=ExecutionConfig(
                    workers=workers, scheduler=scheduler
                ),
            )
            start = time.perf_counter()
            result = engine.compute(zipf_workload)
            elapsed = time.perf_counter() - start
            assert result.as_set() == zipf_inline.as_set()
            run = getattr(engine, "last_pool_run", None)
            chunks = len(run.outcomes) if run is not None else 0
            steals = (
                sum(1 for o in run.outcomes if o.stolen)
                if run is not None
                else 0
            )
            rows.append((f"workers={workers}", scheduler, elapsed, chunks, steals))
            if scheduler == "stealing" and workers == 4:
                stealing_4 = elapsed

    lines = [
        f"IN on Zipfian group sizes (scale={BENCH_SCALE}, "
        f"cpus={os.cpu_count()})",
        f"{'config':<12} {'scheduler':<10} {'seconds':>9} "
        f"{'chunks':>7} {'steals':>7}",
    ]
    for config, scheduler, elapsed, chunks, steals in rows:
        lines.append(
            f"{config:<12} {scheduler:<10} {elapsed:>9.4f} "
            f"{chunks:>7} {steals:>7}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"parallel_in_zipf_{BENCH_SCALE}.txt"
    out_path.write_text("\n".join(lines) + "\n")

    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        assert stealing_4 is not None
        speedup = serial_t / stealing_4
        assert speedup >= EXPECTED_SPEEDUP, (
            f"IN at 4 workers (stealing) only {speedup:.2f}x over serial"
        )
