"""Serial-vs-parallel speedup of the PAR extension.

Regenerates the ``parallel`` comparison table (NL baseline vs ``PAR`` at
1/2/4 workers on a >= 200-group anti-correlated workload) and asserts the
determinism contract: every configuration returns the same skyline and does
exactly the same number of record-pair probes.  The wall-clock speedup
assertion is gated on the host actually having the cores — on a 1-core
container the pool can only add overhead, which the saved results record
honestly.
"""

import os

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm

MIN_CORES_FOR_SPEEDUP = 4
EXPECTED_SPEEDUP = 1.5


def _times_by_workers(report):
    """{workers: elapsed} — the NL baseline is recorded as workers=0."""
    return {
        int(r.params["workers"]): r.elapsed_seconds for r in report.results
    }


def test_parallel_regenerate(benchmark):
    report = regenerate(benchmark, "parallel")
    assert "results identical across worker counts: yes" in report.text

    skylines = {r.skyline_keys for r in report.results}
    assert len(skylines) == 1
    pair_counts = {r.record_pairs for r in report.results}
    assert len(pair_counts) == 1  # two-phase PAR does exactly NL's work

    # The workload must be wide enough for the claim to mean something.
    assert all(
        len(r.skyline_keys) <= r.params["groups"] for r in report.results
    )
    assert report.results[0].params["groups"] >= 200

    times = _times_by_workers(report)
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        speedup = times[0] / times[4]
        assert speedup >= EXPECTED_SPEEDUP, (
            f"PAR at 4 workers only {speedup:.2f}x over serial NL"
        )


@pytest.fixture(scope="module")
def workload():
    return make_workload(BENCH_SCALE, dimensions=3, seed=17)


@pytest.fixture(scope="module")
def reference(workload):
    return make_algorithm("NL", 0.5).compute(workload)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_par_by_worker_count(benchmark, workload, reference, workers):
    engine = make_algorithm("PAR", 0.5, workers=workers)
    result = benchmark.pedantic(
        engine.compute, args=(workload,), iterations=1, rounds=2
    )
    assert result.as_set() == reference.as_set()
    assert (
        result.stats.record_pairs_examined
        == reference.stats.record_pairs_examined
    )


def test_bench_nl_baseline(benchmark, workload, reference):
    engine = make_algorithm("NL", 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(workload,), iterations=1, rounds=2
    )
    assert result.as_set() == reference.as_set()
