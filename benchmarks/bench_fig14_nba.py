"""Figure 14: the real-data (NBA) experiment at four grouping granularities.

Paper shape: on coarse groupings (team, year) the optimised algorithms beat
the direct SQL baseline by up to two orders of magnitude; on the
many-tiny-groups-with-8-attributes case (player) the group-level
optimisations have little to bite on and the gain shrinks to ~15%.
"""

import pytest
from conftest import BENCH_SCALE, regenerate

from repro.core.algorithms import make_algorithm
from repro.data.nba import STAT_COLUMNS, nba_table
from repro.harness.experiments import SCALES
from repro.harness.runner import DEFAULT_ALGORITHMS
from repro.relational.operators import grouped_dataset_from_table


def test_fig14_regenerate(benchmark):
    report = regenerate(benchmark, "fig14")
    panels = {r.params["grouping"] for r in report.results}
    assert len(panels) == 4
    has_sql = any(r.algorithm == "SQL" for r in report.results)
    if has_sql and BENCH_SCALE != "smoke":
        # The SQL self-join is quadratic in rows; at smoke scale (~600
        # rows) it is too small for the paper's gap to be observable, so
        # the who-wins assertion only runs from "small" upwards.
        team = [
            r for r in report.results
            if r.params["grouping"].startswith("by team,")
        ]
        sql = next(r for r in team if r.algorithm == "SQL")
        fastest = min(
            r.elapsed_seconds for r in team if r.algorithm != "SQL"
        )
        assert fastest < sql.elapsed_seconds


@pytest.fixture(scope="module")
def nba():
    rows = max(400, int(15_000 * SCALES[BENCH_SCALE]))
    return nba_table(seed=7, target_rows=rows)


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig14_by_team(benchmark, nba, algorithm):
    dataset = grouped_dataset_from_table(
        nba, ["team"], list(STAT_COLUMNS)
    )
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig14_by_player(benchmark, nba, algorithm):
    """Thousands of tiny groups — the paper's hardest Figure-14 panel."""
    dataset = grouped_dataset_from_table(
        nba, ["player"], list(STAT_COLUMNS)
    )
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
