"""Figure 8: scalability of the direct SQL implementation on sqlite.

Paper shape: the Algorithm-1 self-join grows super-linearly and the native
algorithms beat it by one to two orders of magnitude.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate, total_time

from repro.core.algorithms import make_algorithm


def test_fig8_regenerate(benchmark):
    report = regenerate(benchmark, "fig8")
    sql = total_time(report, "SQL")
    fastest_native = min(total_time(report, "NL"), total_time(report, "LO"))
    assert sql > fastest_native, "SQL must lose to the native algorithms"
    # SQL grows super-linearly (its self-join is quadratic in records):
    # the fitted log-log growth exponent must be clearly above linear.
    from repro.harness.analysis import growth_exponent

    exponent = growth_exponent(report.results, "n_records", "SQL")
    assert exponent > 1.2, f"SQL exponent only {exponent:.2f}"


@pytest.mark.parametrize("algorithm", ["SQL", "NL", "LO"])
def test_bench_fig8_point(benchmark, algorithm):
    """One figure-8 workload point (2-d, independent) per algorithm."""
    dataset = make_workload(
        BENCH_SCALE, distribution="independent", dimensions=2
    )
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
