"""Figure 13(b): the index-based methods over a wider record range.

Paper shape: IN and LO scale smoothly across the extended range, LO at or
below IN (the bounding-box pre-counting only removes record comparisons).
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm


def test_fig13b_regenerate(benchmark):
    report = regenerate(benchmark, "fig13b")
    algorithms = {r.algorithm for r in report.results}
    assert algorithms == {"IN", "LO"}
    # LO examines no more record pairs than IN at every sweep point.
    by_point = {}
    for r in report.results:
        by_point.setdefault(r.params["n_records"], {})[r.algorithm] = r
    for n, point in by_point.items():
        assert (
            point["LO"].record_pairs <= point["IN"].record_pairs
        ), n


@pytest.mark.parametrize("algorithm", ["IN", "LO"])
@pytest.mark.parametrize("backend", ["rtree", "grid"])
def test_bench_fig13b_backends(benchmark, algorithm, backend):
    """Index-method cost under both spatial-index backends (ablation)."""
    dataset = make_workload(BENCH_SCALE)
    engine = make_algorithm(algorithm, 0.5, index_backend=backend)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
