"""Concurrent query admission vs a sequential sweep, same pool.

The claim the admission layer makes (docs/engine.md "Serving over the
network"): interleaving several queries' chunk streams on one resident
pool keeps every worker busy across query boundaries, so a sweep of
independent queries finishes faster than running them one at a time —
while every result stays bit-identical.  This module measures exactly
that on one ``SkylineEngine``:

* **sequential** — ``submit_batch(handle, specs)``: each query drains
  the pool before the next starts.
* **concurrent** — ``submit_batch(handle, specs, concurrency=4)``: up
  to four queries' chunk streams overlap via ``(query id, span)``
  routing.
* **over TCP** — the same sweep split across two ``SkylineClient``
  connections against a ``SkylineServer``, measuring the full network
  + admission path.

Results go to ``benchmarks/results/net_admission_<scale>.txt`` and the
sequential/concurrent series into the perf history under the
``net-admission@<scale>`` fingerprint.
"""

import dataclasses
import json
import os
import threading
import time

import pytest
from conftest import BENCH_SCALE, RESULTS_DIR, perf_history

from repro import ExecutionConfig, SkylineEngine
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.net import SkylineClient, SkylineServer

WORKERS = 4
CONCURRENCY = 4

GROUPS_BY_SCALE = {"smoke": 2_000, "small": 8_000, "paper": 20_000}

SPECS = [
    {"gamma": gamma, "algorithm": algorithm}
    for gamma in (0.5, 0.6, 0.75, 0.9)
    for algorithm in ("LO", "IN")
]


@pytest.fixture(scope="module")
def workload():
    groups = GROUPS_BY_SCALE.get(BENCH_SCALE, GROUPS_BY_SCALE["smoke"])
    return generate_grouped(
        SyntheticSpec(
            n_records=groups * 2,
            avg_group_size=2,
            dimensions=3,
            distribution="anticorrelated",
            seed=43,
        )
    )


def _stats_dict(result):
    payload = dataclasses.asdict(result.stats)
    payload.pop("elapsed_seconds")
    return payload


def test_net_admission_report(workload):
    execution = ExecutionConfig(workers=WORKERS, scheduler="stealing")
    with SkylineEngine(execution) as engine:
        handle = engine.attach(workload)
        engine.query(handle, **SPECS[0])  # warm-up: pool + pins resident

        start = time.perf_counter()
        sequential = engine.submit_batch(handle, SPECS)
        sequential_t = time.perf_counter() - start

        start = time.perf_counter()
        concurrent = engine.submit_batch(
            handle, SPECS, concurrency=CONCURRENCY
        )
        concurrent_t = time.perf_counter() - start

        # The determinism contract: interleaving changes wall clock only.
        for a, b in zip(sequential, concurrent):
            assert a.keys == b.keys
            assert _stats_dict(a) == _stats_dict(b)

        with SkylineServer(
            engine, handle, max_inflight=CONCURRENCY
        ) as server:
            host, port = server.address
            halves = (SPECS[::2], SPECS[1::2])
            outputs = [None, None]

            def sweep(slot):
                with SkylineClient(host, port) as client:
                    outputs[slot] = [
                        client.query(**spec) for spec in halves[slot]
                    ]

            start = time.perf_counter()
            threads = [
                threading.Thread(target=sweep, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            tcp_t = time.perf_counter() - start

        baseline_by_spec = dict(zip(map(repr, SPECS), sequential))
        for slot, half in enumerate(halves):
            for spec, body in zip(half, outputs[slot]):
                cold = baseline_by_spec[repr(spec)]
                keys = [
                    tuple(k) if isinstance(k, list) else k
                    for k in body["keys"]
                ]
                assert keys == list(cold.keys)

    speedup = sequential_t / concurrent_t if concurrent_t > 0 else float("inf")
    lines = [
        f"concurrent admission, {len(workload)} groups x {len(SPECS)} specs"
        f" (scale={BENCH_SCALE}, workers={WORKERS},"
        f" concurrency={CONCURRENCY}, cpus={os.cpu_count()})",
        f"{'sweep':<36} {'seconds':>9}",
        f"{'sequential submit_batch':<36} {sequential_t:>9.4f}",
        f"{f'concurrent submit_batch (x{CONCURRENCY})':<36} {concurrent_t:>9.4f}",
        f"{'two TCP clients via SkylineServer':<36} {tcp_t:>9.4f}",
        f"concurrent speedup over sequential: {speedup:.2f}x",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"net_admission_{BENCH_SCALE}.txt"
    out_path.write_text("\n".join(lines) + "\n")

    history = perf_history()
    fingerprint = "net-admission@{}:{}".format(
        BENCH_SCALE,
        json.dumps(
            {"groups": len(workload), "specs": len(SPECS),
             "workers": WORKERS},
            sort_keys=True,
        ),
    )
    counters = {
        "group_comparisons": sum(
            r.stats.group_comparisons for r in sequential
        ),
        "record_pairs": sum(
            r.stats.record_pairs_examined for r in sequential
        ),
    }
    label = os.environ.get("REPRO_PERF_LABEL", "")
    history.record(
        fingerprint,
        "BATCH",
        sequential_t,
        execution={"mode": "sequential", "workers": WORKERS},
        counters=counters,
        label=label,
    )
    history.record(
        fingerprint,
        "BATCH",
        concurrent_t,
        execution={
            "mode": "concurrent",
            "workers": WORKERS,
            "concurrency": CONCURRENCY,
        },
        counters=counters,
        label=label,
    )
