"""Warm-engine reuse vs the cold one-shot path.

The claim the persistent engine makes (docs/engine.md): once a dataset
is attached — pool spawned, ndarrays shipped, R-tree and candidate order
pinned — a repeat query pays only for chunk spans and the merge.  This
module measures exactly that:

* **cold** — ``aggregate_skyline(...)`` per query: fresh pool, fresh
  shipping, fresh index, every time.
* **warm** — one ``SkylineEngine``; the dataset attached once, then the
  same query repeated on the resident pool.

Both sides must produce the identical skyline *and* identical
``AlgorithmStats`` counters (the engine's determinism contract), so the
speedup is pure setup amortisation, not work reduction.  The acceptance
shape — warm repeat >= 3x over cold at the many-small-groups point with
4 workers — is asserted when the host has the cores; smaller hosts still
record the honest numbers.

Results go to ``benchmarks/results/engine_reuse_<scale>.txt`` and into
the perf-history series (``BENCH_<scale>.json``) under the
``engine-reuse@<scale>`` fingerprint, with warm and cold kept in
separate series via the execution dict.
"""

import json
import os
import time

import pytest
from conftest import BENCH_SCALE, RESULTS_DIR, perf_history

from repro import ExecutionConfig, SkylineEngine, aggregate_skyline
from repro.data.synthetic import SyntheticSpec, generate_grouped

MIN_CORES_FOR_SPEEDUP = 4
EXPECTED_WARM_SPEEDUP = 3.0
WORKERS = 4
ALGORITHM = "LO"
GAMMA = 0.5

#: Many small groups — the regime where per-query setup (pool spawn,
#: shipping, index build) dominates and the engine's amortisation shows.
GROUPS_BY_SCALE = {"smoke": 5_000, "small": 20_000, "paper": 50_000}


def _workload():
    groups = GROUPS_BY_SCALE.get(BENCH_SCALE, GROUPS_BY_SCALE["smoke"])
    return generate_grouped(
        SyntheticSpec(
            n_records=groups * 2,
            avg_group_size=2,
            dimensions=3,
            distribution="anticorrelated",
            seed=41,
        )
    )


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def execution():
    return ExecutionConfig(workers=WORKERS, scheduler="stealing")


def _stats_dict(result):
    import dataclasses

    payload = dataclasses.asdict(result.stats)
    payload.pop("elapsed_seconds")
    return payload


def test_bench_cold_query(benchmark, workload, execution):
    result = benchmark.pedantic(
        aggregate_skyline,
        args=(workload,),
        kwargs={"gamma": GAMMA, "algorithm": ALGORITHM, "execution": execution},
        iterations=1,
        rounds=2,
    )
    assert len(result.keys) >= 1


def test_bench_warm_query(benchmark, workload, execution):
    with SkylineEngine(execution) as engine:
        handle = engine.attach(workload)
        engine.query(handle, gamma=GAMMA, algorithm=ALGORITHM)  # warm-up
        result = benchmark.pedantic(
            engine.query,
            args=(handle,),
            kwargs={"gamma": GAMMA, "algorithm": ALGORITHM},
            iterations=1,
            rounds=3,
        )
        assert engine.stats.warm_queries >= 2
    cold = aggregate_skyline(
        workload, gamma=GAMMA, algorithm=ALGORITHM, execution=execution
    )
    assert result.keys == cold.keys
    assert _stats_dict(result) == _stats_dict(cold)


def test_engine_reuse_report(workload, execution):
    """The figure: cold per-query cost vs 2nd/3rd warm queries.

    Saves the table, appends both series to the perf history, and — on
    hosts with >= 4 cores — asserts the acceptance shape (warm repeat
    >= 3x faster than cold).
    """
    start = time.perf_counter()
    cold = aggregate_skyline(
        workload, gamma=GAMMA, algorithm=ALGORITHM, execution=execution
    )
    cold_t = time.perf_counter() - start

    warm_times = []
    with SkylineEngine(execution) as engine:
        start = time.perf_counter()
        handle = engine.attach(workload)
        first = engine.query(handle, gamma=GAMMA, algorithm=ALGORITHM)
        first_t = time.perf_counter() - start
        for _ in range(3):
            start = time.perf_counter()
            warm = engine.query(handle, gamma=GAMMA, algorithm=ALGORITHM)
            warm_times.append(time.perf_counter() - start)
        pids = engine.worker_pids

    # Determinism contract: identical skyline and counters everywhere.
    for result in (first, warm):
        assert result.keys == cold.keys
        assert _stats_dict(result) == _stats_dict(cold)

    warm_t = min(warm_times)
    speedup = cold_t / warm_t if warm_t > 0 else float("inf")

    lines = [
        f"engine reuse, {len(workload)} groups x {ALGORITHM}"
        f" (scale={BENCH_SCALE}, workers={WORKERS},"
        f" cpus={os.cpu_count()})",
        f"{'query':<28} {'seconds':>9}",
        f"{'cold aggregate_skyline':<28} {cold_t:>9.4f}",
        f"{'engine attach + 1st query':<28} {first_t:>9.4f}",
    ]
    for i, elapsed in enumerate(warm_times, start=2):
        lines.append(f"{f'warm query #{i}':<28} {elapsed:>9.4f}")
    lines.append(f"warm repeat speedup over cold: {speedup:.2f}x")
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / f"engine_reuse_{BENCH_SCALE}.txt"
    out_path.write_text("\n".join(lines) + "\n")

    history = perf_history()
    fingerprint = "engine-reuse@{}:{}".format(
        BENCH_SCALE,
        json.dumps(
            {"groups": len(workload), "workers": WORKERS}, sort_keys=True
        ),
    )
    counters = {
        "group_comparisons": cold.stats.group_comparisons,
        "record_pairs": cold.stats.record_pairs_examined,
    }
    label = os.environ.get("REPRO_PERF_LABEL", "")
    history.record(
        fingerprint,
        ALGORITHM,
        cold_t,
        execution={**execution.to_dict(), "mode": "cold"},
        counters=counters,
        label=label,
    )
    history.record(
        fingerprint,
        ALGORITHM,
        warm_t,
        execution={**execution.to_dict(), "mode": "warm"},
        counters=counters,
        label=label,
    )

    assert len(pids) == WORKERS or (os.cpu_count() or 1) < WORKERS
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SPEEDUP:
        assert speedup >= EXPECTED_WARM_SPEEDUP, (
            f"warm repeat only {speedup:.2f}x over cold"
            f" (cold {cold_t:.4f}s, warm {warm_t:.4f}s)"
        )
