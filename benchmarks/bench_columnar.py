"""Columnar backbone benchmarks: store v1 vs v2, pack and index build.

Measures, at the scale set by ``REPRO_BENCH_SCALE``:

* **build** — assembling the columnar ``GroupedDataset`` from a dict of
  per-group arrays;
* **save/load, v1 vs v2** — the legacy one-member-per-group archive against
  the columnar single-matrix + offsets layout (v2 loads are ``mmap``-backed
  and must be **≥5× faster**, the headline claim of the format change);
* **peak memory** of the two load paths (tracemalloc, python-side);
* **index build** — ``FlatRTree.bulk_load_points`` straight from the corner
  matrix vs the object-based ``RTree.bulk_load(...).pack()`` (bit-identical
  output asserted);
* **pool pack** — ``ship_groups`` buffer handoff from columnar views vs the
  re-flatten fallback for standalone groups.

A summary table is written to ``benchmarks/results/columnar_<scale>.txt``;
run via ``make columnar-bench``.
"""

from __future__ import annotations

import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core.groups import Group, GroupedDataset
from repro.data.store import load_grouped, save_grouped
from repro.index.rtree import FlatRTree, Rect, RTree
from repro.parallel.shm import ShmArena, _contiguous_block, ship_groups

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: Number of groups per scale.  The acceptance claim is pinned at the
#: 50k-group size of the paper's Figure 12/13 sweeps.
GROUPS = {"smoke": 50_000, "small": 50_000, "paper": 200_000}

MIN_LOAD_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _peak_traced(fn):
    tracemalloc.start()
    try:
        result, elapsed = _timed(fn)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, elapsed, peak


@pytest.fixture(scope="module")
def raw_groups():
    count = GROUPS.get(BENCH_SCALE, GROUPS["smoke"])
    rng = np.random.default_rng(7)
    return {f"g{i}": rng.random((1 + (i % 3), 4)) for i in range(count)}


@pytest.fixture(scope="module")
def report_lines():
    lines: list = []
    yield lines
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"columnar_{BENCH_SCALE}.txt"
    rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    lines.append(f"process peak RSS: {rss_mb:.1f} MB")
    out.write_text("\n".join(str(line) for line in lines) + "\n")


def test_store_v1_vs_v2(tmp_path_factory, raw_groups, report_lines):
    tmp = tmp_path_factory.mktemp("columnar")
    dataset, build_s = _timed(lambda: GroupedDataset(raw_groups))
    report_lines.append(
        f"groups={len(dataset)} records={dataset.total_records} "
        f"d={dataset.dimensions} scale={BENCH_SCALE}"
    )
    report_lines.append(f"columnar build: {build_s:.3f}s")

    v1 = tmp / "v1.npz"
    v2 = tmp / "v2.npz"
    _, save_v1 = _timed(lambda: save_grouped(dataset, v1, version=1))
    _, save_v2 = _timed(lambda: save_grouped(dataset, v2, version=2))
    loaded_v1, load_v1, peak_v1 = _peak_traced(lambda: load_grouped(v1))
    loaded_v2, load_v2, peak_v2 = _peak_traced(lambda: load_grouped(v2))

    report_lines.append(
        f"v1 save: {save_v1:.3f}s  load: {load_v1:.3f}s  "
        f"load peak: {peak_v1 / 1e6:.1f}MB  size: {v1.stat().st_size / 1e6:.1f}MB"
    )
    report_lines.append(
        f"v2 save: {save_v2:.3f}s  load: {load_v2:.3f}s  "
        f"load peak: {peak_v2 / 1e6:.1f}MB  size: {v2.stat().st_size / 1e6:.1f}MB"
    )
    speedup = load_v1 / max(load_v2, 1e-9)
    report_lines.append(f"v2 load speedup over v1: {speedup:.1f}x")

    assert loaded_v1.fingerprint() == dataset.fingerprint()
    assert loaded_v2.fingerprint() == dataset.fingerprint()
    assert speedup >= MIN_LOAD_SPEEDUP, (
        f"v2 load only {speedup:.1f}x faster than v1 "
        f"(required >= {MIN_LOAD_SPEEDUP}x)"
    )


def test_index_build_from_corners(raw_groups, report_lines):
    dataset = GroupedDataset(raw_groups)
    corners = dataset.max_corners

    direct, direct_s = _timed(lambda: FlatRTree.bulk_load_points(corners))

    groups = dataset.groups
    objects, object_s = _timed(
        lambda: RTree.bulk_load(
            (Rect.point(group.bbox.max_corner), group.index)
            for group in groups
        ).pack()
    )
    report_lines.append(
        f"index build: corners {direct_s:.3f}s vs objects {object_s:.3f}s "
        f"({object_s / max(direct_s, 1e-9):.1f}x)"
    )
    for name in FlatRTree._ARRAY_FIELDS:
        assert np.array_equal(getattr(direct, name), getattr(objects, name))


def test_pool_pack_handoff(raw_groups, report_lines):
    dataset = GroupedDataset(raw_groups)
    columnar_views = dataset.groups
    assert _contiguous_block(columnar_views) is not None
    standalone = [
        Group(group.key, np.array(group.values), index=group.index)
        for group in columnar_views
    ]
    assert _contiguous_block(standalone) is None

    with ShmArena() as arena:
        _, fast_s = _timed(lambda: ship_groups(columnar_views, arena))
    with ShmArena() as arena:
        _, slow_s = _timed(lambda: ship_groups(standalone, arena))
    report_lines.append(
        f"pool pack: columnar handoff {fast_s:.3f}s vs re-flatten "
        f"{slow_s:.3f}s ({slow_s / max(fast_s, 1e-9):.1f}x)"
    )
