"""Figure 10: run time vs. dimensionality on three data distributions.

Paper shape: index-based IN/LO consistently fastest, with the largest gap on
anti-correlated data; TR/SI improve markedly on independent and correlated
data; NL is the slowest throughout.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm
from repro.harness.runner import DEFAULT_ALGORITHMS


def test_fig10_regenerate(benchmark):
    report = regenerate(benchmark, "fig10")

    def panel_total(distribution, algorithm):
        return sum(
            r.elapsed_seconds
            for r in report.results
            if r.algorithm == algorithm
            and r.params["distribution"] == distribution
        )

    for distribution in ("anticorrelated", "independent", "correlated"):
        nl = panel_total(distribution, "NL")
        best_index = min(
            panel_total(distribution, "IN"), panel_total(distribution, "LO")
        )
        assert best_index < nl, distribution


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig10_high_dimensional_point(benchmark, algorithm):
    """The d=7 anti-correlated point — the figure's hardest setting."""
    dataset = make_workload(BENCH_SCALE, dimensions=7)
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
