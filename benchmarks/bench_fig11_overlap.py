"""Figure 11: run time vs. group spread/overlap on three distributions.

Paper shape: with heavily overlapping groups the window query returns
almost every group, so the pure index method (IN) loses its advantage — it
can even fall behind the nested loop — while LO's bounding-box counting
keeps it competitive.
"""

import pytest
from conftest import BENCH_SCALE, make_workload, regenerate

from repro.core.algorithms import make_algorithm
from repro.harness.runner import DEFAULT_ALGORITHMS


def test_fig11_regenerate(benchmark):
    report = regenerate(benchmark, "fig11")

    def point(algorithm, spread, distribution="anticorrelated"):
        for r in report.results:
            if (
                r.algorithm == algorithm
                and r.params["group_spread"] == spread
                and r.params["distribution"] == distribution
            ):
                return r
        raise AssertionError((algorithm, spread))

    # The index keeps fewer comparisons at low overlap than at high
    # overlap (relative to the number of groups) - the figure's mechanism.
    low = point("IN", 0.1)
    high = point("IN", 0.8)
    assert high.group_comparisons >= low.group_comparisons

    # LO stays at or below IN overall (bbox counting only removes work).
    lo_total = sum(
        r.elapsed_seconds for r in report.results if r.algorithm == "LO"
    )
    in_total = sum(
        r.elapsed_seconds for r in report.results if r.algorithm == "IN"
    )
    assert lo_total <= in_total * 1.5


@pytest.mark.parametrize("algorithm", DEFAULT_ALGORITHMS)
def test_bench_fig11_high_overlap_point(benchmark, algorithm):
    """The spread=0.8 anti-correlated point — where indexing suffers."""
    dataset = make_workload(BENCH_SCALE, group_spread=0.8)
    engine = make_algorithm(algorithm, 0.5)
    result = benchmark.pedantic(
        engine.compute, args=(dataset,), iterations=1, rounds=3
    )
    assert len(result) >= 1
