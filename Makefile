# Convenience targets for the aggregate-skyline reproduction.

PYTHON ?= python
SCALE ?= smoke

.PHONY: install test bench bench-small bench-paper examples figures metrics-demo parallel-demo parallel-bench columnar-bench perf-smoke faults-demo faults-test engine-demo engine-test engine-bench planner-demo planner-test net-demo net-test net-bench clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-small:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_BENCH_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

figures:
	@for fig in table2 fig8 fig10 fig11 fig12 fig13a fig13b fig13c fig14 ablations extensions; do \
		$(PYTHON) -m repro experiment $$fig --scale $(SCALE); \
	done

# Run a tiny workload and dump the metrics registry (docs/observability.md).
metrics-demo:
	$(PYTHON) -m repro metrics --demo

# Inject a SIGKILL into a pooled run and watch the retry recover it
# bit-identically (REPRO_FAULTS; docs/parallel.md fault tolerance).
faults-demo:
	$(PYTHON) examples/fault_tolerance_demo.py

# The fault-injection test matrix (crash/hang/exception under fork and
# spawn); CI runs this leg with REPRO_START_METHOD=spawn on top.
faults-test:
	$(PYTHON) -m pytest tests/test_fault_tolerance.py

# Persistent-session walkthrough: attach once, batch of warm queries,
# injected crash -> single-slot respawn (docs/engine.md).
engine-demo:
	$(PYTHON) examples/engine_session_demo.py

# The engine test matrix (warm parity, crash respawn, lifecycle) —
# CI runs this leg with REPRO_START_METHOD=spawn on top.
engine-test:
	$(PYTHON) -m pytest tests/test_engine.py

# Warm-reuse figure: cold one-shot vs warm repeat queries; appends to
# the BENCH_$(SCALE).json perf history (docs/engine.md).
engine-bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest \
		benchmarks/bench_engine_reuse.py

# Plan optimizer walkthrough on the NBA dataset: EXPLAIN from the CLI
# (candidate costs + keep/reject reasons), then the auto run and the SQL
# EXPLAIN of the same query (docs/planner.md).
planner-demo:
	$(PYTHON) -m repro nba --rows 3000 --out /tmp/planner_demo_nba.csv
	$(PYTHON) -m repro skyline --csv /tmp/planner_demo_nba.csv \
		--group-by player --of pts:max,reb:max,ast:max \
		--algorithm auto --explain
	$(PYTHON) -m repro skyline --csv /tmp/planner_demo_nba.csv \
		--group-by player --of pts:max,reb:max,ast:max \
		--algorithm auto
	$(PYTHON) -m repro query --table nba=/tmp/planner_demo_nba.csv \
		--explain "SELECT player FROM nba GROUP BY player \
		SKYLINE OF pts MAX, reb MAX USING ALGORITHM AUTO"

# The planner test matrix (auto/explicit parity, plan cache, EXPLAIN
# surfaces) — CI runs this leg with REPRO_START_METHOD=spawn on top.
planner-test:
	$(PYTHON) -m pytest tests/test_planner.py

# Network front-end walkthrough on the NBA dataset: TCP server + two
# concurrent clients with interleaved sweeps, bit-identity checked
# against sequential engine.query(), deadline timeout, HTTP shim,
# graceful drain (docs/engine.md "Serving over the network").
net-demo:
	$(PYTHON) examples/net_demo.py

# The network/admission test matrix plus the serve error-path suite —
# CI runs this leg with REPRO_START_METHOD=spawn on top.
net-test:
	$(PYTHON) -m pytest tests/test_net.py tests/test_serve_errors.py

# Sequential vs concurrent submit_batch vs two TCP clients on one pool;
# appends to the BENCH_$(SCALE).json perf history (docs/engine.md).
net-bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest \
		benchmarks/bench_net_admission.py

# Serial-vs-parallel comparison table on a pool of 2 (docs/parallel.md).
parallel-demo:
	$(PYTHON) -m repro experiment parallel --scale $(SCALE) --workers 2

# PAR + parallel-IN speedup benchmarks: both schedulers, steal counts
# (benchmarks/results/parallel_in_zipf_$(SCALE).txt; docs/parallel.md).
parallel-bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest \
		benchmarks/bench_parallel_speedup.py

# Columnar backbone benchmarks: store v1 vs v2 load, index build from
# corner matrices, shm pool pack handoff
# (benchmarks/results/columnar_$(SCALE).txt; docs/data-model.md).
columnar-bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest \
		benchmarks/bench_columnar.py

# Perf-regression smoke: record a small fixed matrix of (workload,
# algorithm, execution) points into BENCH_smoke.json, then flag any
# latency/counter regression over the rolling baseline
# (docs/benchmarking.md; the nightly perf-smoke CI job runs this).
PERF_HISTORY ?= BENCH_smoke.json
perf-smoke:
	$(PYTHON) -m repro perf record --history $(PERF_HISTORY) \
		--workload paper-default --scale 0.05 --algorithm NL --repeat 3
	$(PYTHON) -m repro perf record --history $(PERF_HISTORY) \
		--workload paper-default --scale 0.05 --algorithm LO --repeat 3
	$(PYTHON) -m repro perf record --history $(PERF_HISTORY) \
		--workload zipf-heavy --scale 0.05 --algorithm IN --repeat 3
	$(PYTHON) -m repro perf record --history $(PERF_HISTORY) \
		--workload zipf-heavy --scale 0.05 --algorithm IN --repeat 3 \
		--execution workers=2,scheduler=stealing
	$(PYTHON) -m repro perf report --history $(PERF_HISTORY)

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
