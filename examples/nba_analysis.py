"""NBA analysis: the paper's real-data scenario (Section 4.2).

Uses the synthetic NBA player-season table (the offline stand-in for
databasebasketball.com, see DESIGN.md) and answers questions like the
paper's motivating ones — *who are the most interesting groups according to
the features of their elements?* — at several grouping granularities:

* the best *franchises* judged by all the seasons of all their players,
* the best *players* judged season-by-season (a player with one monster
  season does not dominate a consistently excellent one),
* how the γ knob grows the player result from the most selective set.

Run:  python examples/nba_analysis.py
"""

from repro import aggregate_skyline, gamma_profile
from repro.data.nba import STAT_COLUMNS, nba_table
from repro.relational.operators import grouped_dataset_from_table


def main() -> None:
    table = nba_table(seed=7, target_rows=4_000)
    print(
        f"synthetic NBA table: {len(table)} player-seasons,"
        f" columns {list(table.columns)}"
    )

    # ------------------------------------------------------------------
    # Best franchises, judged by every season of every player they ran.
    # With all 8 statistics nearly everything is incomparable (the paper's
    # 8-attribute NBA queries behave the same way), so we judge on the
    # perimeter trio where franchises actually differ.
    # ------------------------------------------------------------------
    by_team = grouped_dataset_from_table(
        table, keys=["team"], measures=["pts", "ast", "stl"]
    )
    teams = aggregate_skyline(by_team, gamma=0.5, algorithm="LO")
    print(
        f"\nBest teams (pts/ast/stl, gamma=.5): {len(teams)}/{len(by_team)}"
        f" teams -> {sorted(teams.keys)[:10]}"
    )

    eight_dim = grouped_dataset_from_table(
        table, keys=["team"], measures=list(STAT_COLUMNS)
    )
    all_attrs = aggregate_skyline(eight_dim, gamma=0.5, algorithm="LO")
    print(
        f"With all {len(STAT_COLUMNS)} statistics {len(all_attrs)} of"
        f" {len(eight_dim)} teams are incomparable - more criteria,"
        " bigger skyline."
    )

    # ------------------------------------------------------------------
    # Best players on the classic big-three statistics.
    # ------------------------------------------------------------------
    by_player = grouped_dataset_from_table(
        table, keys=["player"], measures=["pts", "reb", "ast"]
    )
    players = aggregate_skyline(by_player, gamma=0.5, algorithm="LO")
    print(
        f"\nBest players (pts/reb/ast, gamma=.5):"
        f" {len(players)}/{len(by_player)} players"
    )
    for name in sorted(players.keys)[:8]:
        seasons = by_player[name].size
        print(f"  {name:<22} ({seasons} seasons)")

    # ------------------------------------------------------------------
    # gamma as a result-size knob (Section 2.2): growing the team result.
    # ------------------------------------------------------------------
    profile = gamma_profile(by_team)
    print("\nTeam result size as gamma grows:")
    for gamma in (0.5, 0.6, 0.75, 0.9, 1.0):
        admitted = profile.skyline_at(gamma)
        print(f"  gamma={gamma:<4} -> {len(admitted)} teams")

    # ------------------------------------------------------------------
    # Weighted gamma-dominance: an 82-game season should count for more
    # than a 10-game stint.  Weight each player-season by games played.
    # ------------------------------------------------------------------
    from repro import weighted_aggregate_skyline
    from repro.relational.operators import weighted_groups_from_table

    weighted_groups = weighted_groups_from_table(
        table, ["team"], ["pts", "ast", "stl"], weight="gp"
    )
    weighted_teams = weighted_aggregate_skyline(weighted_groups, gamma=0.5)
    moved = set(teams.keys) ^ set(weighted_teams.keys)
    print(
        f"\nWeighting seasons by games played: {len(weighted_teams)} teams"
        f" survive ({len(moved)} verdict(s) changed vs. uniform weights)"
    )

    # ------------------------------------------------------------------
    # Why not aggregate-then-skyline?  A max-per-team skyline can eject a
    # team no other team actually gamma-dominates (the paper's Cameron /
    # Nolan discussion).
    # ------------------------------------------------------------------
    maxima = {
        key: [tuple(map(max, zip(*group.values.tolist())))]
        for key, group in ((g.key, g) for g in by_team)
    }
    max_sky = aggregate_skyline(maxima, gamma=0.5, algorithm="NL")
    only_aggregate = set(teams.keys) - set(max_sky.keys)
    print(
        f"\nTeams kept by the aggregate skyline but dropped by a"
        f" max-then-skyline pipeline: {len(only_aggregate)}"
    )


if __name__ == "__main__":
    main()
