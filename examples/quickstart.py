"""Quickstart: the paper's movie example, end to end.

Reproduces the introduction of the paper on the Figure-1 Movie table:

* Example 1 — a traditional record skyline (Figure 2),
* Example 2 — a traditional aggregate query (Figure 3),
* Example 3 — the aggregate skyline of directors (Figure 4b),

first through the SKYLINE-extended SQL dialect, then through the Python
API, and finally the γ-profile of Section 2.2 (ranking directors by the
smallest γ that admits them).

Run:  python examples/quickstart.py
"""

from repro import aggregate_skyline, gamma_profile
from repro.data.movies import figure1_directors_dataset, movie_table
from repro.query import execute


def main() -> None:
    catalog = {"movies": movie_table()}

    print("The Movie table (Figure 1)")
    print(catalog["movies"].to_text())

    print("\nExample 1 - record skyline (Figure 2):")
    print("  SELECT * FROM movies SKYLINE OF pop MAX, qual MAX\n")
    result = execute(
        "SELECT * FROM movies SKYLINE OF pop MAX, qual MAX", catalog
    )
    print(result.to_text())

    print("\nExample 2 - aggregate query (Figure 3):")
    print(
        "  SELECT director, max(pop), max(qual) FROM movies"
        " GROUP BY director HAVING max(qual) >= 8.0\n"
    )
    result = execute(
        "SELECT director, max(pop), max(qual) FROM movies"
        " GROUP BY director HAVING max(qual) >= 8.0",
        catalog,
    )
    print(result.to_text())

    print("\nExample 3 - aggregate skyline (Figure 4b):")
    print(
        "  SELECT director FROM movies GROUP BY director"
        " SKYLINE OF pop MAX, qual MAX\n"
    )
    result = execute(
        "SELECT director FROM movies GROUP BY director"
        " SKYLINE OF pop MAX, qual MAX",
        catalog,
    )
    print(result.to_text())
    assert result.skyline_result is not None
    stats = result.skyline_result.stats
    print(
        f"\n  ({stats.algorithm}: {stats.group_comparisons} group"
        f" comparisons, {stats.record_pairs_examined} record pairs)"
    )

    # The same query through the Python API, with a different algorithm.
    dataset = figure1_directors_dataset()
    api_result = aggregate_skyline(dataset, gamma=0.5, algorithm="NL")
    print(f"\nPython API (NL): {sorted(api_result.keys)}")

    # Section 2.2: gamma as a result-size knob.  minimal_gamma is the
    # smallest threshold that admits each director; directors dominated
    # outright (p = 1) are never admitted.
    profile = gamma_profile(dataset)
    print("\nDirectors ranked by minimal admitting gamma:")
    for director, minimal in profile.ranked():
        shown = "never (fully dominated)" if minimal is None else f"{float(minimal):.3f}"
        print(f"  {director:<10} {shown}")


def extras() -> None:
    """Post-verdict analysis: explanations and record contributions."""
    from repro import explain, record_contributions

    dataset = figure1_directors_dataset()
    print("\nWhy is Wiseau out?")
    print(" ", explain(dataset, "Wiseau").summary().replace("\n", "\n  "))

    print("\nWhich Tarantino movie does the work? (offense = rival movies")
    print("dominated, liability = rival movies dominating it)")
    for c in record_contributions(dataset, "Tarantino"):
        print(
            f"  pop={c.record[0]:>5.0f} qual={c.record[1]:.1f}"
            f"  offense={c.offense}  liability={c.liability}"
        )


if __name__ == "__main__":
    main()
    extras()
