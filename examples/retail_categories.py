"""Retail scenario: "successful kinds of products" (paper's introduction).

The paper motivates aggregate skylines with, among others, *the
identification of successful/popular kinds of products in on-line selling
sites*.  This example builds a small product catalogue, loads it through the
CSV layer, and asks: which categories are not dominated — judging a
category by all of its products' (units sold, average rating, margin)?

It also contrasts the answer with the two naive pipelines the paper warns
about (skyline-then-group and group-then-skyline over averages).

Run:  python examples/retail_categories.py
"""

import numpy as np

from repro import aggregate_skyline, skyline_mask
from repro.relational.csvio import dumps_csv, loads_csv
from repro.relational.operators import grouped_dataset_from_table
from repro.relational.table import Table

CATEGORIES = {
    # category: (base units sold, base rating, base margin, spread, count)
    # "headphones" is heterogeneous (stars and duds); "tablets" is the
    # paper's Jackson: consistently good with no extreme product, so it has
    # no record-skyline entry yet no category gamma-dominates it.
    "headphones": (900, 4.2, 18.0, 0.55, 14),
    "keyboards": (500, 4.0, 14.0, 0.25, 12),
    "webcams": (350, 3.4, 9.0, 0.30, 10),
    "monitors": (650, 4.3, 22.0, 0.20, 9),
    "cables": (2000, 3.8, 4.0, 0.45, 20),
    "tablets": (700, 4.25, 16.0, 0.08, 10),
    "novelty_gifts": (120, 2.9, 6.0, 0.50, 11),
}


def build_catalogue(seed: int = 11) -> Table:
    """A product table with per-category location and spread."""
    rng = np.random.default_rng(seed)
    rows = []
    for category, (units, rating, margin, spread, count) in CATEGORIES.items():
        for i in range(count):
            factor = float(rng.lognormal(0.0, spread))
            rows.append(
                (
                    f"{category}-{i:02d}",
                    category,
                    round(units * factor, 0),
                    round(float(np.clip(rating + rng.normal(0, 0.35), 1, 5)), 2),
                    round(margin * float(rng.lognormal(0.0, 0.2)), 2),
                )
            )
    return Table(["product", "category", "units", "rating", "margin"], rows)


def main() -> None:
    table = build_catalogue()

    # Round-trip through CSV to exercise the I/O layer like a real client.
    table = loads_csv(dumps_csv(table))
    print(f"catalogue: {len(table)} products in {len(CATEGORIES)} categories")

    measures = ["units", "rating", "margin"]
    dataset = grouped_dataset_from_table(table, ["category"], measures)

    winners = aggregate_skyline(dataset, gamma=0.5, algorithm="LO")
    print(f"\nAggregate skyline categories (gamma=.5): {sorted(winners.keys)}")

    # Naive pipeline 1: record skyline first, then look at the categories of
    # the surviving products ("directors of the most interesting movies",
    # not "the most interesting directors").
    values = [
        [float(row[table.column_position(c)]) for c in measures]
        for row in table.rows
    ]
    mask = skyline_mask(values)
    category_position = table.column_position("category")
    sky_categories = sorted(
        {row[category_position] for row, keep in zip(table.rows, mask) if keep}
    )
    print(f"skyline-then-group categories:          {sky_categories}")

    # Naive pipeline 2: average each category, then a record skyline over
    # the averages (unstable under monotone transformations, per the paper).
    averages = {
        group.key: [np.asarray(group.values).mean(axis=0)]
        for group in dataset
    }
    avg_winners = aggregate_skyline(averages, gamma=0.5, algorithm="NL")
    print(f"avg-then-skyline categories:            {sorted(avg_winners.keys)}")

    dropped = sorted(set(winners.keys) - set(sky_categories))
    print(
        f"\nKept only by the aggregate skyline: {dropped} - a consistent"
        "\ncategory with no single star product (the paper's Jackson case)."
        "\nOnly the aggregate skyline judges every category by all of its"
        "\nproducts under any monotone user preference (Section 2.3)."
    )


if __name__ == "__main__":
    main()
