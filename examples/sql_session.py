"""A scripted SQL session: the operator as a database feature.

Drives the interactive shell programmatically through a complete
workflow — create a schema, insert data, run aggregate-skyline queries
with different γ and the WEIGHT BY extension, mutate the data, watch the
answer change, and persist the database to disk.

(Interactively, the same session is just ``aggskyline shell``.)

Run:  python examples/sql_session.py
"""

import io
import tempfile
from pathlib import Path

from repro.query.shell import Shell

SESSION = """
CREATE TABLE seasons (team, year, wins, point_diff, attendance);
INSERT INTO seasons VALUES
  ('Harbor',  2019, 52,  4.1, 17200),
  ('Harbor',  2020, 55,  5.0, 17900),
  ('Harbor',  2021, 49,  3.2, 18100),
  ('Summit',  2019, 60,  6.5,  14800),
  ('Summit',  2020, 23, -4.0,  14100),
  ('Summit',  2021, 58,  6.0,  15000),
  ('Prairie', 2019, 41,  0.5, 16900),
  ('Prairie', 2020, 43,  0.8, 16800),
  ('Prairie', 2021, 40,  0.2, 17000),
  ('Gorge',   2019, 30, -2.5, 12000),
  ('Gorge',   2020, 28, -3.0, 11800),
  ('Gorge',   2021, 33, -1.5, 12500);
.tables
.schema seasons

SELECT team, count(*) AS seasons, max(wins)
FROM seasons GROUP BY team ORDER BY team;

SELECT team FROM seasons GROUP BY team
SKYLINE OF wins MAX, point_diff MAX, attendance MAX
USING ALGORITHM NL ORDER BY team;

SELECT team FROM seasons GROUP BY team
SKYLINE OF wins MAX, point_diff MAX
WITH GAMMA 0.9 ORDER BY team;

SELECT team FROM seasons GROUP BY team
SKYLINE OF wins MAX, point_diff MAX
WEIGHT BY attendance ORDER BY team;

UPDATE seasons SET wins = 59, point_diff = 6.2
WHERE team = 'Prairie' AND year >= 2020;

SELECT team FROM seasons GROUP BY team
SKYLINE OF wins MAX, point_diff MAX USING ALGORITHM NL ORDER BY team;

DELETE FROM seasons WHERE team = 'Gorge';
.tables
.timing
SELECT count(*) AS remaining FROM seasons GROUP BY team ORDER BY team;
.save {savedir}
.quit
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        savedir = Path(tmp) / "league_db"
        script = SESSION.format(savedir=savedir)
        output = io.StringIO()
        exit_code = Shell(
            stdin=io.StringIO(script), stdout=output
        ).run()
        print(output.getvalue())
        saved = sorted(p.name for p in savedir.iterdir())
        print(f"(exit {exit_code}; persisted files: {saved})")


if __name__ == "__main__":
    main()
