"""Comparing the paper's algorithms on a synthetic workload.

A miniature of the evaluation section: generate an anti-correlated grouped
dataset (the hardest distribution for skylines), run all five native
algorithms plus the SQL baseline, and print run time and work counters —
the same metrics the paper's figures plot.

Run:  python examples/algorithm_comparison.py
"""

from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.harness.runner import run_algorithms
from repro.relational.table import Table


def main() -> None:
    spec = SyntheticSpec(
        n_records=3_000,
        avg_group_size=50,
        dimensions=4,
        distribution="anticorrelated",
        group_spread=0.2,
        seed=42,
    )
    dataset = generate_grouped(spec)
    print(
        f"workload: {dataset.total_records} records,"
        f" {len(dataset)} groups, d={dataset.dimensions},"
        f" {spec.distribution}"
    )

    results = run_algorithms(
        dataset,
        algorithms=("SQL", "NL", "TR", "SI", "IN", "LO"),
        gamma=0.5,
        experiment="example",
        verify_consistency=True,
    )

    rows = [
        (
            r.algorithm,
            f"{r.elapsed_seconds:.4f}",
            r.group_comparisons,
            r.record_pairs,
            r.skyline_size,
            f"{results[0].elapsed_seconds / r.elapsed_seconds:.1f}x",
        )
        for r in results
    ]
    table = Table(
        ["algorithm", "time (s)", "group cmp", "record pairs",
         "skyline", "speed-up vs SQL"],
        rows,
    )
    print()
    print(table.to_text())
    print(
        "\nAll algorithms returned the same skyline"
        f" ({results[0].skyline_size} groups) - verified."
    )


if __name__ == "__main__":
    main()
