"""Watching a pooled skyline run survive a worker crash.

The fault-injection harness (``repro.parallel.faults``) SIGKILLs one
pool worker on its first chunk — injected through the same
``REPRO_FAULTS`` environment variable an operator would use.  With
``on_failure="retry"`` the executor detects the dead worker within a
liveness-poll interval, re-executes only the undelivered chunks on a
fresh pool, and the recovered result is bit-identical to an unfaulted
run — same skyline, same work counters.  The run-log events printed at
the end show the crash and the retry correlated to one trace.

Run:  python examples/fault_tolerance_demo.py   (or ``make faults-demo``)
"""

import io
import json
import os
import time

from repro.core.algorithms import make_algorithm
from repro.core.execution import ExecutionConfig
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.obs import runlog
from repro.parallel import FAULTS_ENV_VAR


def main() -> None:
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=2_000,
            avg_group_size=25,
            dimensions=3,
            distribution="independent",
            seed=11,
        )
    )
    execution = ExecutionConfig(
        workers=2, on_failure="retry", max_retries=2, retry_backoff=0.05
    )
    print(
        f"workload: {dataset.total_records} records, {len(dataset)} groups;"
        f" execution: workers={execution.workers},"
        f" on_failure={execution.on_failure!r}"
    )

    baseline = make_algorithm("PAR", gamma=0.5, execution=execution)
    expected = baseline.compute(dataset)

    # Same run, but one worker is SIGKILLed on its first chunk.  The
    # executor detects the crash, retries the lost chunks, and the
    # result must match the unfaulted run bit for bit.
    log_buffer = io.StringIO()
    os.environ[FAULTS_ENV_VAR] = "crash@0"
    try:
        with runlog.use_runlog(runlog.RunLog(log_buffer)):
            faulted = make_algorithm("PAR", gamma=0.5, execution=execution)
            started = time.perf_counter()
            result = faulted.compute(dataset)
            elapsed = time.perf_counter() - started
    finally:
        del os.environ[FAULTS_ENV_VAR]

    assert result.as_set() == expected.as_set()
    assert (
        result.stats.group_comparisons == expected.stats.group_comparisons
    ), "recovered counters must reconcile with the unfaulted run"
    print(
        f"recovered in {elapsed:.2f}s: {len(result)} skyline groups,"
        f" {result.stats.group_comparisons} comparisons"
        " (bit-identical to the unfaulted run)"
    )

    print("\nfault-tolerance run-log events:")
    for line in log_buffer.getvalue().splitlines():
        event = json.loads(line)
        if event["event"] in ("pool_start", "pool_error", "chunk_retry", "pool_end"):
            keys = (
                "event",
                "attempt",
                "error",
                "crashed_pids",
                "lost_chunks",
                "chunks",
            )
            shown = {key: event[key] for key in keys if key in event}
            print(f"  {shown}")


if __name__ == "__main__":
    main()
