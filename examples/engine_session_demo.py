"""A persistent skyline session: attach once, query many times, survive
a worker crash.

The :class:`repro.SkylineEngine` owns a resident worker pool.  This demo

1. attaches a dataset once (shared-memory shipping, R-tree pre-pinned),
2. arms the fault-injection harness (:mod:`repro.parallel.faults`) so
   one resident worker SIGKILLs itself mid-chunk during the first query,
3. runs a mixed batch of warm queries — different gammas, algorithms and
   a ``dims`` projection — through the crash: the engine respawns only
   the dead slot (the surviving worker keeps its pid and its pinned
   data), and every result still matches the cold one-shot path
   bit-for-bit (skyline *and* work counters).

Run:  python examples/engine_session_demo.py   (or ``make engine-demo``)
"""

import dataclasses
import io
import json
import time

from repro import ExecutionConfig, SkylineEngine, aggregate_skyline
from repro.data.synthetic import SyntheticSpec, generate_grouped
from repro.obs import runlog
from repro.parallel.faults import FaultSpec


def stats_dict(result):
    payload = dataclasses.asdict(result.stats)
    payload.pop("elapsed_seconds")
    return payload


def check_against_cold(result, dataset, **query):
    cold = aggregate_skyline(dataset, **query)
    assert result.keys == cold.keys
    assert stats_dict(result) == stats_dict(cold)


def main() -> None:
    dataset = generate_grouped(
        SyntheticSpec(
            n_records=3_000,
            avg_group_size=6,
            dimensions=3,
            distribution="anticorrelated",
            seed=29,
        )
    )
    execution = ExecutionConfig(
        workers=2, scheduler="stealing", on_failure="retry", max_retries=2
    )
    log_buffer = io.StringIO()
    with runlog.use_runlog(runlog.RunLog(log_buffer)):
        # One worker will SIGKILL itself on its first chunk (max_fires=1,
        # so exactly one slot dies across the whole session).
        with SkylineEngine(
            execution, faults=FaultSpec("crash", at_chunk=0)
        ) as engine:
            started = time.perf_counter()
            handle = engine.attach(dataset)
            attach_t = time.perf_counter() - started
            print(
                f"attached {len(dataset)} groups"
                f" ({dataset.total_records} records) in {attach_t:.3f}s;"
                f" via_shm={handle.via_shm}; workers={engine.worker_pids}"
            )

            pids_before = list(engine.worker_pids)
            batch = [
                {"gamma": 0.5, "algorithm": "LO"},
                {"gamma": 0.6, "algorithm": "PAR"},
                {"gamma": 0.5, "algorithm": "IN"},
                {"gamma": 0.55, "algorithm": "LO", "dims": (0, 2)},
            ]
            started = time.perf_counter()
            results = engine.submit_batch(handle, batch)
            batch_t = time.perf_counter() - started
            for spec, result in zip(batch, results):
                dims = spec.get("dims")
                data = (
                    dataset
                    if dims is None
                    else {
                        g.key: g.values[:, dims] for g in dataset.groups
                    }
                )
                check_against_cold(
                    result,
                    data,
                    gamma=spec["gamma"],
                    algorithm=spec["algorithm"],
                    execution=execution,
                )
                print(
                    f"  [{spec['algorithm']}] gamma={spec['gamma']}"
                    f"{f' dims={dims}' if dims else ''}:"
                    f" {len(result)} groups (matches cold run exactly)"
                )
            print(
                f"batch of {len(batch)} queries in {batch_t:.3f}s on the"
                " resident pool"
            )

            # The injected crash fired during the first query; exactly one
            # slot was respawned, the other kept its pid and pinned data.
            pids_after = list(engine.worker_pids)
            assert engine.pool.total_respawns == 1
            survivors = set(pids_before) & set(pids_after)
            assert len(survivors) == len(pids_before) - 1
            (crashed,) = set(pids_before) - survivors
            print(
                f"injected crash killed worker {crashed}; engine respawned"
                f" only that slot ({pids_before} -> {pids_after}), every"
                " result still bit-identical to the cold runs"
            )
            s = engine.stats
            print(
                f"session stats: queries={s.queries}"
                f" (warm={s.warm_queries}, cold={s.cold_queries}),"
                f" attaches={s.attaches},"
                f" slot_respawns={engine.pool.total_respawns}"
            )

    print("\nengine run-log events:")
    for line in log_buffer.getvalue().splitlines():
        event = json.loads(line)
        if event["event"] in (
            "engine_start", "attach", "slot_respawn", "engine_end"
        ):
            keys = (
                "event", "workers", "pids", "groups", "via_shm", "slot",
                "old_pid", "new_pid", "queries", "warm_queries",
                "slot_respawns",
            )
            shown = {key: event[key] for key in keys if key in event}
            print(f"  {shown}")


if __name__ == "__main__":
    main()
