"""Hospital quality analysis: "identification of virtuous wards".

The paper's introduction names medical databases as a key application:
find the virtuous hospitals/wards according to the outcomes of their
individual cases.  This example builds a synthetic surgical registry —
every record is one treated case with (success score, recovery speed,
cost efficiency) — and asks which wards are not γ-dominated.

It then uses the ``explain`` API to justify each verdict (the part a
hospital administrator actually needs) and the γ-profile to rank wards by
how close they are to the quality frontier.

Run:  python examples/hospital_wards.py
"""

import numpy as np

from repro import aggregate_skyline, compute_gamma_profile, explain
from repro.core.groups import GroupedDataset

# ward: (mean success, mean recovery, mean efficiency, spread, cases)
WARDS = {
    "St. Clara / Cardiology": (0.92, 0.70, 0.55, 0.05, 60),
    "St. Clara / Oncology": (0.78, 0.62, 0.60, 0.08, 45),
    "Riverside / Cardiology": (0.88, 0.80, 0.40, 0.06, 55),
    "Riverside / Trauma": (0.70, 0.85, 0.65, 0.10, 70),
    "Hillcrest / Cardiology": (0.80, 0.58, 0.42, 0.06, 30),
    "Hillcrest / Geriatrics": (0.60, 0.50, 0.80, 0.07, 40),
    "Lakeview / Trauma": (0.55, 0.60, 0.45, 0.10, 35),
}


def build_registry(seed: int = 5) -> GroupedDataset:
    rng = np.random.default_rng(seed)
    groups = {}
    for ward, (success, recovery, efficiency, spread, cases) in WARDS.items():
        means = np.array([success, recovery, efficiency])
        records = np.clip(
            rng.normal(means, spread, size=(cases, 3)), 0.0, 1.0
        )
        groups[ward] = records
    return GroupedDataset(groups)


def main() -> None:
    registry = build_registry()
    print(
        f"surgical registry: {registry.total_records} cases across"
        f" {len(registry)} wards"
    )
    print("criteria: success rate, recovery speed, cost efficiency (all MAX)")

    result = aggregate_skyline(registry, gamma=0.5, algorithm="LO")
    print(f"\nVirtuous wards (gamma=.5): {len(result)} of {len(registry)}")
    for ward in sorted(result.keys):
        print(f"  + {ward}")

    # ------------------------------------------------------------------
    # Explanations: why is each non-virtuous ward excluded?
    # ------------------------------------------------------------------
    print("\nWhy the others are out:")
    excluded = sorted(set(registry.keys()) - result.as_set())
    for ward in excluded:
        explanation = explain(registry, ward, gamma=0.5)
        top = explanation.dominators[0]
        print(
            f"  - {ward}: dominated by {top.dominator}"
            f" (p = {float(top.probability):.2f})"
        )

    # ------------------------------------------------------------------
    # Ranking by distance from the frontier (Section 2.2's gamma knob).
    # ------------------------------------------------------------------
    profile = compute_gamma_profile(registry)
    print("\nAll wards by the gamma needed to admit them:")
    for ward, minimal in profile.ranked():
        if minimal is None:
            print(f"  {ward:<26} never (totally dominated)")
        else:
            print(f"  {ward:<26} gamma >= {float(minimal):.3f}")

    # A problematic ward is one *every* ward dominates to some degree -
    # the dual question ("problematic diseases") uses the same machinery
    # with MIN directions on negative outcomes.


if __name__ == "__main__":
    main()
