"""Serving skyline queries over TCP with concurrent admission.

This demo builds the synthetic NBA dataset, starts a
:class:`repro.net.SkylineServer` over a persistent engine, and drives it
with two concurrent clients submitting the same gamma/algorithm sweep in
opposite orders — their chunk streams interleave on the one resident
worker pool.  It then checks the acceptance contract end to end:

1. every response is bit-identical (skyline keys *and* every
   ``AlgorithmStats`` work counter) to running the same spec
   sequentially through ``engine.query()``,
2. a request with a tiny ``deadline_ms`` gets a clean ``timeout`` error
   frame while the pool keeps serving,
3. the HTTP shim answers ``curl``-style POST/GET on the same port,
4. shutdown drains in-flight requests before closing.

Run:  python examples/net_demo.py   (or ``make net-demo``)
"""

import dataclasses
import json
import threading
import time
import urllib.request

from repro import SkylineEngine
from repro.data.nba import nba_table
from repro.net import RequestTimeout, ServerOverloaded, SkylineClient, SkylineServer
from repro.relational.operators import grouped_dataset_from_table

SPECS = [
    {"gamma": gamma, "algorithm": algorithm}
    for gamma in (0.5, 0.6, 0.75)
    for algorithm in ("LO", "IN")
]

COUNTERS = (
    "group_comparisons",
    "record_pairs_examined",
    "bbox_shortcuts",
    "groups_skipped",
    "index_candidates",
    "stopping_rule_exits",
)


def counters_of(stats_dict):
    return {key: stats_dict[key] for key in COUNTERS}


def main() -> None:
    table = nba_table(target_rows=3_000)
    dataset = grouped_dataset_from_table(
        table, ["player"], ["pts", "reb", "ast"], ["max", "max", "max"]
    )
    print(f"dataset: {len(dataset)} players, {dataset.total_records} seasons")

    engine = SkylineEngine(execution="workers=2,scheduler=stealing")
    handle = engine.attach(dataset)
    print("baseline: running the sweep sequentially through engine.query()")
    baseline = [engine.query(handle, **spec) for spec in SPECS]

    with SkylineServer(engine, handle, max_inflight=3) as server:
        host, port = server.address
        print(f"server: listening on {host}:{port} (JSONL + HTTP POST)")

        bodies = [{}, {}]
        orders = (
            list(range(len(SPECS))),
            list(reversed(range(len(SPECS)))),
        )

        def run_client(slot, order):
            with SkylineClient(host, port) as client:
                for index in order:
                    bodies[slot][index] = client.query(**SPECS[index])

        started = time.perf_counter()
        threads = [
            threading.Thread(target=run_client, args=(slot, order))
            for slot, order in enumerate(orders)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        print(
            f"clients: 2 x {len(SPECS)} interleaved queries in"
            f" {elapsed:.2f}s"
        )

        for slot, body_by_index in enumerate(bodies):
            for index, cold in enumerate(baseline):
                body = body_by_index[index]
                keys = [
                    tuple(k) if isinstance(k, list) else k
                    for k in body["keys"]
                ]
                assert keys == list(cold.keys), (slot, index)
                cold_stats = dataclasses.asdict(cold.stats)
                assert counters_of(body["stats"]) == counters_of(
                    cold_stats
                ), (slot, index)
        print(
            "bit-identity: skylines and every work counter match the"
            " sequential baseline for both clients"
        )

        with SkylineClient(host, port) as client:
            try:
                client.query(gamma=0.5, algorithm="NL", deadline_ms=20)
                print("deadline: query finished inside 20ms (fast machine)")
            except RequestTimeout as exc:
                print(f"deadline: got the expected timeout frame: {exc}")
            # the abandoned query frees its slot when it completes;
            # retry until the pool is ours again
            while True:
                try:
                    body = client.query(gamma=0.6, algorithm="LO")
                    break
                except (ServerOverloaded, RequestTimeout):
                    time.sleep(0.2)
            print(
                f"pool survived: follow-up query returned"
                f" {len(body['keys'])} groups"
            )

        request = urllib.request.Request(
            f"http://{host}:{port}/query",
            data=json.dumps({"gamma": 0.6, "algorithm": "LO"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            http_body = json.loads(response.read())
        print(
            f"http shim: POST returned {len(http_body['keys'])} groups"
            f" via {http_body['algorithm']}"
        )
        with urllib.request.urlopen(
            f"http://{host}:{port}/stats", timeout=60
        ) as response:
            stats = json.loads(response.read())
        print(
            "server stats:"
            f" admitted={stats['admission']['admitted_total']}"
            f" rejected={stats['admission']['rejected_total']}"
            f" engine_queries={stats['engine']['queries']}"
        )
    engine.close()
    print("shutdown: drained and closed cleanly")


if __name__ == "__main__":
    main()
