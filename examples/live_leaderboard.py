"""Live leaderboard: streaming updates and interactive-time answers.

A scenario the batch operator cannot serve alone: an e-sports platform
keeps a leaderboard of *teams*, judged by all of their players' match
performances (score, accuracy).  Matches stream in continuously and the
front page must stay fresh.

Three extension features work together here:

* :class:`repro.IncrementalAggregateSkyline` absorbs each match result in
  O(total records) instead of recomputing the quadratic pair matrix
  (justified by the paper's stability-to-updates property);
* :class:`repro.AnytimeAggregateSkyline` produces a sound partial answer
  under a hard pair-comparison budget — confirmed teams can be rendered
  immediately while the rest refines;
* :func:`repro.top_k_dominating_groups` gives a ranking even among
  mutually incomparable teams.

Run:  python examples/live_leaderboard.py
"""

import numpy as np

from repro import (
    AnytimeAggregateSkyline,
    IncrementalAggregateSkyline,
    top_k_dominating_groups,
)

TEAMS = ("Crimson", "Ocelots", "Glaciers", "Nomads", "Pulsar", "Drifters")


def simulate_match(rng, team_strength, team):
    """One player-performance record: (score, accuracy)."""
    strength = team_strength[team]
    score = max(0.0, rng.normal(120 * strength, 30))
    accuracy = float(np.clip(rng.normal(0.5 * strength, 0.12), 0, 1))
    return round(score, 1), round(accuracy, 3)


def main() -> None:
    rng = np.random.default_rng(2026)
    team_strength = {
        team: float(rng.uniform(0.8, 1.25)) for team in TEAMS
    }

    board = IncrementalAggregateSkyline(dimensions=2)

    print("streaming 300 match results...")
    for round_number in (1, 2, 3):
        for _ in range(100):
            team = str(rng.choice(TEAMS))
            board.insert(team, simulate_match(rng, team_strength, team))
        leaders = sorted(board.skyline(gamma=0.5))
        print(
            f"  after round {round_number}: {board.total_records} records,"
            f" leaderboard = {leaders}"
        )

    # ------------------------------------------------------------------
    # Interactive answer under a budget: confirm what we can, keep
    # refining the undecided teams.
    # ------------------------------------------------------------------
    snapshot = board.to_dataset()
    anytime = AnytimeAggregateSkyline(snapshot, gamma=0.5, block_size=64)
    budget_step = 2_000
    spent = 0
    print("\nanytime refinement (budget steps of 2000 pair checks):")
    while not anytime.done:
        anytime.step(pair_budget=budget_step)
        spent += budget_step
        print(
            f"  ~{spent} checks: confirmed={sorted(anytime.confirmed())},"
            f" undecided={len(anytime.candidates()) - len(anytime.confirmed())}"
        )
    assert set(anytime.confirmed()) == set(board.skyline())

    # ------------------------------------------------------------------
    # A ranking even among incomparable teams.
    # ------------------------------------------------------------------
    print("\nteams by number of teams they dominate:")
    for team, count in top_k_dominating_groups(snapshot, k=len(TEAMS)):
        marker = "*" if team in anytime.confirmed() else " "
        print(f"  {marker} {team:<10} dominates {count} team(s)")
    print("  (* = on the leaderboard)")

    # ------------------------------------------------------------------
    # The stability property in action: one catastrophic match cannot
    # dethrone a consistently strong team.
    # ------------------------------------------------------------------
    leaders = board.skyline()
    champion = leaders[0]
    before = set(leaders)
    board.insert(champion, (0.0, 0.0))
    after = set(board.skyline())
    print(
        f"\nafter {champion}'s disaster match: leaderboard"
        f" {'unchanged' if before == after else f'changed to {sorted(after)}'}"
    )


if __name__ == "__main__":
    main()
